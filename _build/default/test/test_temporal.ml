(* Tests for civil dates, unit systems, day-count conventions and the
   simulated clock. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let date = Civil.make
let epoch93 = date 1993 1 1
let epoch87 = date 1987 1 1

(* ------------------------------------------------------------------ *)
(* Civil *)

let test_civil_known_dates () =
  check_int "1970-01-01 is rata die 0" 0 (Civil.rata_die (date 1970 1 1));
  check_int "1970-01-02" 1 (Civil.rata_die (date 1970 1 2));
  check_int "1969-12-31" (-1) (Civil.rata_die (date 1969 12 31));
  check_int "2000-03-01" 11017 (Civil.rata_die (date 2000 3 1));
  check_int "1970-01-01 is Thursday" 4 (Civil.weekday (date 1970 1 1));
  check_int "1993-01-01 is Friday" 5 (Civil.weekday (date 1993 1 1));
  check_int "1987-01-01 is Thursday" 4 (Civil.weekday (date 1987 1 1));
  check_int "1992-12-28 is Monday" 1 (Civil.weekday (date 1992 12 28))

let test_civil_leap () =
  check_bool "1992 leap" true (Civil.is_leap 1992);
  check_bool "1900 not leap" false (Civil.is_leap 1900);
  check_bool "2000 leap" true (Civil.is_leap 2000);
  check_int "feb 1992" 29 (Civil.days_in_month 1992 2);
  check_int "feb 1993" 28 (Civil.days_in_month 1993 2)

let test_civil_arith () =
  check_str "add_days" "1993-01-04" (Civil.to_string (Civil.add_days (date 1992 12 28) 7));
  check_str "add_months clamps" "1993-02-28"
    (Civil.to_string (Civil.add_months (date 1993 1 31) 1));
  check_str "add_months backward" "1992-11-30"
    (Civil.to_string (Civil.add_months (date 1993 1 30) (-2)));
  check_str "add_months across year" "1994-03-15"
    (Civil.to_string (Civil.add_months (date 1993 12 15) 3))

let test_civil_strings () =
  check_str "pp" "1987-01-01" (Civil.to_string epoch87);
  check_bool "of_string valid" true (Civil.of_string "1993-11-19" = Some (date 1993 11 19));
  check_bool "of_string invalid day" true (Civil.of_string "1993-02-29" = None);
  check_bool "of_string garbage" true (Civil.of_string "hello" = None)

let prop_rata_die_roundtrip =
  QCheck2.Test.make ~name:"rata_die roundtrip" ~count:1000
    QCheck2.Gen.(int_range (-1_000_000) 1_000_000)
    (fun z -> Civil.rata_die (Civil.of_rata_die z) = z)

let prop_weekday_cycles =
  QCheck2.Test.make ~name:"weekday advances by 1 mod 7" ~count:500
    QCheck2.Gen.(int_range (-100_000) 100_000)
    (fun z ->
      let d = Civil.of_rata_die z in
      let w = Civil.weekday d and w' = Civil.weekday (Civil.add_days d 1) in
      w' = (w mod 7) + 1)

(* ------------------------------------------------------------------ *)
(* Unit_system *)

let test_day_chronons () =
  check_int "epoch day is chronon 1" 1
    (Unit_system.chronon_of_date ~epoch:epoch93 Granularity.Days epoch93);
  check_int "day before epoch is -1" (-1)
    (Unit_system.chronon_of_date ~epoch:epoch93 Granularity.Days (date 1992 12 31));
  check_int "Jan 31 1993 is day 31" 31
    (Unit_system.chronon_of_date ~epoch:epoch93 Granularity.Days (date 1993 1 31));
  check_int "Dec 28 1992 is day -4" (-4)
    (Unit_system.chronon_of_date ~epoch:epoch93 Granularity.Days (date 1992 12 28))

let test_week_anchor () =
  (* Paper: with epoch Jan 1 1993 (a Friday), the first week of 1993 as a
     day interval is (-4,3): Monday Dec 28 .. Sunday Jan 3. *)
  let i0 = Unit_system.start_of_index ~epoch:epoch93 Granularity.Weeks 0 in
  check_int "week 0 starts on Monday Dec 28" (-4 * 86400) i0;
  check_int "week 0 contains epoch" 0
    (Unit_system.index_of_instant ~epoch:epoch93 Granularity.Weeks 0);
  check_int "week 1 starts Jan 4" (3 * 86400)
    (Unit_system.start_of_index ~epoch:epoch93 Granularity.Weeks 1)

let test_month_year_units () =
  check_int "month 0 starts at epoch" 0
    (Unit_system.start_of_index ~epoch:epoch87 Granularity.Months 0);
  check_int "month 1 starts Feb 1" (31 * 86400)
    (Unit_system.start_of_index ~epoch:epoch87 Granularity.Months 1);
  check_int "year 1 starts Jan 1 1988" (365 * 86400)
    (Unit_system.start_of_index ~epoch:epoch87 Granularity.Years 1);
  (* 1988 is a leap year: year 2 starts 366 days later. *)
  check_int "year 2 starts Jan 1 1989" ((365 + 366) * 86400)
    (Unit_system.start_of_index ~epoch:epoch87 Granularity.Years 2);
  check_int "decade of 1987 starts 1980" (Civil.rata_die (date 1980 1 1) - Civil.rata_die epoch87)
    (Unit_system.start_of_index ~epoch:epoch87 Granularity.Decades 0 / 86400);
  check_int "century of 1987 starts 1900"
    (Civil.rata_die (date 1900 1 1) - Civil.rata_die epoch87)
    (Unit_system.start_of_index ~epoch:epoch87 Granularity.Centuries 0 / 86400)

let test_aligned () =
  let al c f = Unit_system.aligned ~coarse:c ~fine:f in
  check_bool "years/days" true (al Granularity.Years Granularity.Days);
  check_bool "weeks/days" true (al Granularity.Weeks Granularity.Days);
  check_bool "years/weeks misaligned" false (al Granularity.Years Granularity.Weeks);
  check_bool "months/weeks misaligned" false (al Granularity.Months Granularity.Weeks);
  check_bool "years/months" true (al Granularity.Years Granularity.Months);
  check_bool "centuries/decades" true (al Granularity.Centuries Granularity.Decades);
  check_bool "days/months (wrong order)" false (al Granularity.Days Granularity.Months);
  check_bool "months/hours" true (al Granularity.Months Granularity.Hours)

let test_span_of_dates () =
  let span =
    Unit_system.chronon_span_of_dates ~epoch:epoch87 Granularity.Days (date 1987 1 1)
      (date 1992 1 3)
  in
  check_int "span lo" 1 (Interval.lo span);
  check_int "span hi (Jan 3 1992 = day 1829)" 1829 (Interval.hi span)

let granularity_gen = QCheck2.Gen.oneofl Granularity.all

let prop_index_start_inverse =
  QCheck2.Test.make ~name:"index_of_instant (start_of_index k) = k" ~count:800
    QCheck2.Gen.(pair granularity_gen (int_range (-500) 500))
    (fun (g, k) ->
      Unit_system.index_of_instant ~epoch:epoch87 g
        (Unit_system.start_of_index ~epoch:epoch87 g k)
      = k)

let prop_instant_within_unit =
  QCheck2.Test.make ~name:"start <= instant < next start" ~count:800
    QCheck2.Gen.(pair granularity_gen (int_range (-2_000_000_000) 2_000_000_000))
    (fun (g, i) ->
      let k = Unit_system.index_of_instant ~epoch:epoch87 g i in
      Unit_system.start_of_index ~epoch:epoch87 g k <= i
      && i < Unit_system.start_of_index ~epoch:epoch87 g (k + 1))

let prop_date_chronon_roundtrip =
  QCheck2.Test.make ~name:"date_of_chronon . chronon_of_date = start of unit" ~count:500
    QCheck2.Gen.(pair granularity_gen (int_range (-50_000) 50_000))
    (fun (g, z) ->
      let d = Civil.of_rata_die z in
      let c = Unit_system.chronon_of_date ~epoch:epoch87 g d in
      let d' = Unit_system.date_of_chronon ~epoch:epoch87 g c in
      (* d' is the first day of the unit containing d. *)
      Civil.compare d' d <= 0
      && Unit_system.chronon_of_date ~epoch:epoch87 g d' = c)

(* ------------------------------------------------------------------ *)
(* Day_count *)

let test_day_count_conventions () =
  let d1 = date 2006 8 31 and d2 = date 2007 2 28 in
  check_int "actual days" 181 (Day_count.day_count Day_count.Actual_365 d1 d2);
  check_int "30/360 US" 178 (Day_count.day_count Day_count.Thirty_360_us d1 d2);
  check_int "30E/360" 178 (Day_count.day_count Day_count.Thirty_e_360 d1 d2);
  (* 30/360 US vs 30E/360 differ when d2 is the 31st and d1 is not 30/31. *)
  let d1 = date 2007 1 15 and d2 = date 2007 1 31 in
  check_int "30/360 US keeps d2=31" 16 (Day_count.day_count Day_count.Thirty_360_us d1 d2);
  check_int "30E/360 truncates d2" 15 (Day_count.day_count Day_count.Thirty_e_360 d1 d2)

(* The Sto90a bond example: a full 30/360 month counts as 30 days even when
   the calendar month has 31 or 28. *)
let test_thirty_360_months () =
  List.iter
    (fun m ->
      check_int
        (Printf.sprintf "month %d counts 30 days" m)
        30
        (Day_count.day_count Day_count.Thirty_360_us (date 1993 m 1)
           (Civil.add_months (date 1993 m 1) 1)))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]

let test_year_fractions () =
  let close a b = abs_float (a -. b) < 1e-9 in
  check_bool "ACT/365 one year" true
    (close (Day_count.year_fraction Day_count.Actual_365 (date 1993 1 1) (date 1994 1 1))
       (365. /. 365.));
  check_bool "ACT/360 30 days" true
    (close (Day_count.year_fraction Day_count.Actual_360 (date 1993 1 1) (date 1993 1 31))
       (30. /. 360.));
  check_bool "ACT/ACT non-leap year" true
    (close
       (Day_count.year_fraction Day_count.Actual_actual (date 1993 3 1) (date 1993 3 31))
       (30. /. 365.));
  check_bool "ACT/ACT leap year" true
    (close
       (Day_count.year_fraction Day_count.Actual_actual (date 1992 3 1) (date 1992 3 31))
       (30. /. 366.));
  check_bool "30/360 full year is exactly 1" true
    (close (Day_count.year_fraction Day_count.Thirty_360_us (date 1993 1 1) (date 1994 1 1)) 1.)

let test_accrued_interest () =
  (* 8% on 1000 face over a 30/360 half-year = 40, regardless of the actual
     number of days (the paper's motivating example). *)
  let a =
    Day_count.accrued_interest ~convention:Day_count.Thirty_360_us ~annual_rate:0.08
      ~face:1000. (date 1993 1 15) (date 1993 7 15)
  in
  check_bool "30/360 half year accrual" true (abs_float (a -. 40.) < 1e-9)

let date_gen =
  QCheck2.Gen.map Civil.of_rata_die (QCheck2.Gen.int_range 3000 20000)

let prop_act_act_additive =
  QCheck2.Test.make ~name:"ACT/ACT additivity" ~count:300
    QCheck2.Gen.(triple date_gen date_gen date_gen)
    (fun (a, b, c) ->
      let l = List.sort Civil.compare [ a; b; c ] in
      match l with
      | [ a; b; c ] ->
        let yf = Day_count.year_fraction Day_count.Actual_actual in
        abs_float (yf a c -. (yf a b +. yf b c)) < 1e-9
      | _ -> false)

let prop_day_count_antisymmetric =
  QCheck2.Test.make ~name:"day_count antisymmetric" ~count:300
    QCheck2.Gen.(pair (oneofl Day_count.all) (pair date_gen date_gen))
    (fun (conv, (a, b)) ->
      match conv with
      | Day_count.Thirty_360_us ->
        true (* US month-end adjustment is direction-dependent by design *)
      | _ -> Day_count.day_count conv a b = -Day_count.day_count conv b a)

(* ------------------------------------------------------------------ *)
(* Clock *)

let test_clock () =
  let c = Clock.create () in
  check_int "starts at 0" 0 (Clock.now c);
  check_int "epoch day" 1 (Clock.today ~epoch:epoch87 c);
  Clock.advance c 86400;
  check_int "next day" 2 (Clock.today ~epoch:epoch87 c);
  Clock.advance_to c 86400;
  check_int "advance_to backward is no-op" (86400) (Clock.now c);
  Clock.advance_to c (10 * 86400);
  check_str "date after 10 days" "1987-01-11" (Civil.to_string (Clock.date ~epoch:epoch87 c));
  Alcotest.check_raises "negative advance rejected"
    (Invalid_argument "Clock.advance: negative step") (fun () -> Clock.advance c (-1))

(* ------------------------------------------------------------------ *)
(* Span (unanchored durations, section 5) *)

let test_span_basics () =
  let s = Span.make ~months:1 ~days:2 ~seconds:3600 () in
  check_bool "not fixed" false (Span.is_fixed s);
  check_bool "no seconds for variable span" true (Span.to_seconds s = None);
  let f = Span.make ~days:2 ~seconds:3600 () in
  check_bool "fixed span" true (Span.to_seconds f = Some ((2 * 86400) + 3600));
  check_bool "seconds normalize into days" true
    (Span.make ~seconds:(86400 * 3) () = Span.make ~days:3 ());
  check_str "pp" "1mo2d3600s" (Span.to_string s);
  check_str "pp zero" "0" (Span.to_string Span.zero)

let test_span_arithmetic () =
  let a = Span.of_granularity Granularity.Weeks 2 in
  check_bool "2 weeks = 14 days" true (a = Span.make ~days:14 ());
  check_bool "years are months" true
    (Span.of_granularity Granularity.Years 3 = Span.make ~months:36 ());
  check_bool "add" true
    (Span.add (Span.make ~months:1 ()) (Span.make ~days:10 ())
    = Span.make ~months:1 ~days:10 ());
  check_bool "neg + add = zero" true
    (Span.add a (Span.neg a) = Span.zero);
  check_bool "scale" true (Span.scale 3 (Span.make ~days:2 ()) = Span.make ~days:6 ())

let test_span_anchoring () =
  (* One month anchored at Jan 31 clamps (like Civil.add_months). *)
  check_str "month from jan 31" "1993-02-28"
    (Civil.to_string (Span.add_to_date (date 1993 1 31) (Span.of_granularity Granularity.Months 1)));
  check_str "mixed span" "1993-03-03"
    (Civil.to_string (Span.add_to_date (date 1993 1 31) (Span.make ~months:1 ~days:3 ())));
  check_bool "between" true
    (Span.between (date 1993 1 1) (date 1993 2 1) = Span.make ~days:31 ())

let test_span_comparison () =
  let cmp a b = Span.compare_opt a b in
  check_bool "1 month vs 27 days" true (cmp (Span.make ~months:1 ()) (Span.make ~days:27 ()) = Some 1);
  check_bool "1 month vs 32 days" true (cmp (Span.make ~months:1 ()) (Span.make ~days:32 ()) = Some (-1));
  check_bool "1 month vs 30 days is anchor-dependent" true
    (cmp (Span.make ~months:1 ()) (Span.make ~days:30 ()) = None);
  check_bool "equal spans" true (cmp (Span.make ~days:7 ()) (Span.of_granularity Granularity.Weeks 1) = Some 0)

let prop_span_add_assoc =
  let gen = QCheck2.Gen.(map (fun (m, d, s) -> Span.make ~months:m ~days:d ~seconds:s ())
                           (triple (int_range (-24) 24) (int_range (-60) 60) (int_range (-100000) 100000))) in
  QCheck2.Test.make ~name:"span addition associative" ~count:300
    QCheck2.Gen.(triple gen gen gen)
    (fun (a, b, c) -> Span.add a (Span.add b c) = Span.add (Span.add a b) c)

let prop_span_anchor_fixed =
  QCheck2.Test.make ~name:"fixed spans shift dates by exact days" ~count:300
    QCheck2.Gen.(pair (int_range (-30000) 30000) (int_range (-2000) 2000))
    (fun (rd, days) ->
      let d = Civil.of_rata_die rd in
      Civil.rata_die (Span.add_to_date d (Span.make ~days ())) = rd + days)

(* ------------------------------------------------------------------ *)
(* Proleptic edge cases *)

let test_proleptic_and_centuries () =
  check_int "year 1 day 1 weekday (proleptic Monday)" 1 (Civil.weekday (date 1 1 1));
  check_bool "before common era roundtrip" true
    (Civil.equal (Civil.of_rata_die (Civil.rata_die (date (-44) 3 15))) (date (-44) 3 15));
  (* 1900 not leap but 2000 leap across the century boundary. *)
  check_int "feb 1900" 28 (Civil.days_in_month 1900 2);
  check_int "feb 2000" 29 (Civil.days_in_month 2000 2);
  (* Centuries unit containing a negative year. *)
  let epoch = Civil.make 1987 1 1 in
  let c = Unit_system.chronon_of_date ~epoch Granularity.Centuries (date (-50) 6 1) in
  check_str "century of -50 starts -100"
    "-100-01-01"
    (Civil.to_string (Unit_system.date_of_chronon ~epoch Granularity.Centuries c))

(* ------------------------------------------------------------------ *)
(* Multi-language date I/O (MultiCal's orthogonal features, section 5) *)

let test_date_io_format () =
  let d = date 1993 11 19 in
  check_str "iso" "1993-11-19" (Date_io.format_date d);
  check_str "long en" "November 19, 1993" (Date_io.format_date ~fmt:Date_io.Long d);
  check_str "abbrev" "19 Nov 1993" (Date_io.format_date ~fmt:Date_io.Abbrev d);
  check_str "dmy" "19/11/1993" (Date_io.format_date ~fmt:Date_io.Numeric_dmy d);
  check_str "mdy" "11/19/1993" (Date_io.format_date ~fmt:Date_io.Numeric_mdy d);
  (match Date_io.locale_named "fr" with
  | Some fr ->
    check_str "long fr" "19. novembre 1993" (Date_io.format_date ~locale:fr ~fmt:Date_io.Long d);
    check_str "weekday fr" "vendredi" (Date_io.weekday_name ~locale:fr d)
  | None -> Alcotest.fail "french locale");
  match Date_io.locale_named "de" with
  | Some de ->
    check_str "weekday de" "Freitag" (Date_io.weekday_name ~locale:de d)
  | None -> Alcotest.fail "german locale"

let test_date_io_parse () =
  let d = date 1993 11 19 in
  let ok ?locale s = check_bool s true (Date_io.parse ?locale s = Some d) in
  ok "1993-11-19";
  ok "November 19, 1993";
  ok "19 Nov 1993";
  ok "19 November 1993";
  ok "19/11/1993" (* 19 > 12, so day-first *);
  (match Date_io.locale_named "fr" with
  | Some fr ->
    ok ~locale:fr "19 novembre 1993";
    check_bool "fr numeric is D/M/Y" true
      (Date_io.parse ~locale:fr "05/11/1993" = Some (date 1993 11 5))
  | None -> Alcotest.fail "french locale");
  check_bool "en 05/11 is M/D/Y" true (Date_io.parse "05/11/1993" = Some (date 1993 5 11));
  check_bool "exact dmy pins it" true
    (Date_io.parse_exact ~fmt:Date_io.Numeric_dmy "05/11/1993" = Some (date 1993 11 5));
  check_bool "garbage" true (Date_io.parse "the day after tomorrow" = None);
  check_bool "invalid day" true (Date_io.parse "1993-02-31" = None)

let test_date_io_interval_span () =
  let epoch = epoch93 in
  check_str "interval" "1993-01-04 .. 1993-01-10"
    (Date_io.format_interval ~epoch (Interval.make 4 10));
  check_str "singleton" "1993-01-04" (Date_io.format_interval ~epoch (Interval.make 4 4));
  check_str "span en" "3 month(s) 2 day(s)"
    (Date_io.format_span (Span.make ~months:3 ~days:2 ()));
  match Date_io.locale_named "de" with
  | Some de ->
    check_str "span de" "1 Monat(e)" (Date_io.format_span ~locale:de (Span.make ~months:1 ()))
  | None -> Alcotest.fail "german locale"

let prop_date_io_roundtrip =
  QCheck2.Test.make ~name:"format/parse roundtrip across locales and formats" ~count:400
    QCheck2.Gen.(
      triple (int_range 0 50000)
        (oneofl Date_io.locales)
        (oneofl Date_io.[ Iso; Long; Abbrev; Numeric_dmy; Numeric_mdy ]))
    (fun (z, locale, fmt) ->
      let d = Civil.of_rata_die z in
      Date_io.parse_exact ~locale ~fmt (Date_io.format_date ~locale ~fmt d) = Some d)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "cal_temporal"
    [
      ( "civil",
        [
          Alcotest.test_case "known dates" `Quick test_civil_known_dates;
          Alcotest.test_case "leap years" `Quick test_civil_leap;
          Alcotest.test_case "arithmetic" `Quick test_civil_arith;
          Alcotest.test_case "strings" `Quick test_civil_strings;
        ] );
      ( "unit_system",
        [
          Alcotest.test_case "day chronons" `Quick test_day_chronons;
          Alcotest.test_case "week anchor (paper 3.1)" `Quick test_week_anchor;
          Alcotest.test_case "months/years/decades" `Quick test_month_year_units;
          Alcotest.test_case "alignment" `Quick test_aligned;
          Alcotest.test_case "span of dates (paper 3.2)" `Quick test_span_of_dates;
        ] );
      ( "day_count",
        [
          Alcotest.test_case "conventions" `Quick test_day_count_conventions;
          Alcotest.test_case "30/360 months" `Quick test_thirty_360_months;
          Alcotest.test_case "year fractions" `Quick test_year_fractions;
          Alcotest.test_case "accrued interest" `Quick test_accrued_interest;
        ] );
      ("clock", [ Alcotest.test_case "simulated clock" `Quick test_clock ]);
      ( "span",
        [
          Alcotest.test_case "basics" `Quick test_span_basics;
          Alcotest.test_case "arithmetic" `Quick test_span_arithmetic;
          Alcotest.test_case "anchoring" `Quick test_span_anchoring;
          Alcotest.test_case "comparison" `Quick test_span_comparison;
        ] );
      ( "proleptic",
        [ Alcotest.test_case "negative years and centuries" `Quick test_proleptic_and_centuries ] );
      qsuite "span-props" [ prop_span_add_assoc; prop_span_anchor_fixed ];
      ( "date_io",
        [
          Alcotest.test_case "formatting" `Quick test_date_io_format;
          Alcotest.test_case "parsing" `Quick test_date_io_parse;
          Alcotest.test_case "intervals and spans" `Quick test_date_io_interval_span;
        ] );
      qsuite "date-io-props" [ prop_date_io_roundtrip ];
      qsuite "civil-props" [ prop_rata_die_roundtrip; prop_weekday_cycles ];
      qsuite "unit-props"
        [ prop_index_start_inverse; prop_instant_within_unit; prop_date_chronon_roundtrip ];
      qsuite "day-count-props" [ prop_act_act_additive; prop_day_count_antisymmetric ];
    ]
