(* Tests for chronons, intervals and interval sets (paper section 3.1). *)

let chronon_gen =
  QCheck2.Gen.map Chronon.of_offset (QCheck2.Gen.int_range (-1000) 1000)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let iv lo hi = Interval.make lo hi
let iset pairs = Interval_set.of_pairs pairs

let set_testable =
  Alcotest.testable Interval_set.pp Interval_set.equal

let check_set = Alcotest.check set_testable

(* ------------------------------------------------------------------ *)
(* Chronon *)

let test_chronon_basics () =
  check_int "offset of 1" 0 (Chronon.to_offset 1);
  check_int "offset of -1" (-1) (Chronon.to_offset (-1));
  check_int "of_offset 0" 1 (Chronon.of_offset 0);
  check_int "of_offset -1" (-1) (Chronon.of_offset (-1));
  check_int "add skips zero" 1 (Chronon.add (-1) 1);
  check_int "add backward skips zero" (-1) (Chronon.add 1 (-1));
  check_int "diff across zero" 1 (Chronon.diff 1 (-1));
  check_int "succ -1" 1 (Chronon.succ (-1));
  check_int "pred 1" (-1) (Chronon.pred 1)

let test_chronon_check () =
  Alcotest.check_raises "zero rejected" (Chronon.Invalid_chronon 0) (fun () ->
      ignore (Chronon.check 0));
  check_int "nonzero passes" 5 (Chronon.check 5)

let prop_offset_roundtrip =
  QCheck2.Test.make ~name:"chronon offset roundtrip" ~count:500
    QCheck2.Gen.(int_range (-10000) 10000)
    (fun o -> Chronon.to_offset (Chronon.of_offset o) = o)

let prop_chronon_never_zero =
  QCheck2.Test.make ~name:"add never yields zero" ~count:500
    QCheck2.Gen.(pair chronon_gen (int_range (-2000) 2000))
    (fun (c, n) -> Chronon.add c n <> 0)

let prop_add_diff =
  QCheck2.Test.make ~name:"add b (diff a b) = a" ~count:500
    QCheck2.Gen.(pair chronon_gen chronon_gen)
    (fun (a, b) -> Chronon.add b (Chronon.diff a b) = a)

(* ------------------------------------------------------------------ *)
(* Interval *)

let test_interval_make () =
  let i = iv (-4) 3 in
  check_int "lo" (-4) (Interval.lo i);
  check_int "hi" 3 (Interval.hi i);
  (* Paper: the week (-4,3) contains exactly 7 days. *)
  check_int "length spans the zero hole" 7 (Interval.length i);
  check_int "singleton length" 1 (Interval.length (Interval.singleton 5));
  Alcotest.check_raises "lo > hi rejected"
    (Invalid_argument "Interval.make: lo (5) > hi (2)") (fun () ->
      ignore (iv 5 2))

let test_interval_relations () =
  let jan = iv 1 31 and feb = iv 32 59 in
  let w1 = iv (-4) 3 and w2 = iv 4 10 in
  check_bool "w1 overlaps jan" true (Interval.overlaps w1 jan);
  check_bool "w2 during jan" true (Interval.during w2 jan);
  check_bool "w1 not during jan" false (Interval.during w1 jan);
  check_bool "jan meets feb at 31/32? no" false (Interval.meets jan feb);
  check_bool "meets shares endpoint" true (Interval.meets (iv 1 5) (iv 5 9));
  check_bool "jan before feb" true (Interval.before jan feb);
  check_bool "feb not before jan" false (Interval.before feb jan);
  check_bool "le: jan le feb-hull" true (Interval.le jan (iv 1 59));
  check_bool "starts" true (Interval.starts (iv 1 5) (iv 1 31));
  check_bool "finishes" true (Interval.finishes (iv 20 31) jan);
  check_bool "equal" true (Interval.equal jan (iv 1 31))

let test_interval_ops () =
  (match Interval.intersect (iv (-4) 3) (iv 1 31) with
  | Some i -> check_bool "clip week to jan" true (Interval.equal i (iv 1 3))
  | None -> Alcotest.fail "expected intersection");
  check_bool "disjoint intersect" true (Interval.intersect (iv 1 3) (iv 10 12) = None);
  check_bool "hull" true (Interval.equal (Interval.hull (iv 1 3) (iv 10 12)) (iv 1 12));
  check_bool "shift over zero" true
    (Interval.equal (Interval.shift (iv 1 3) (-2)) (iv (-2) 1));
  check_bool "contains" true (Interval.contains (iv (-4) 3) (-1));
  check_bool "not contains" false (Interval.contains (iv 4 10) 3)

let prop_intersect_commutes =
  let gen =
    QCheck2.Gen.(
      map2
        (fun a b -> (Interval.make (Chronon.of_offset (min a b)) (Chronon.of_offset (max a b)), ()))
        (int_range (-50) 50) (int_range (-50) 50))
  in
  let pair_gen = QCheck2.Gen.(pair gen gen) in
  QCheck2.Test.make ~name:"intersect commutative" ~count:300 pair_gen
    (fun ((a, ()), (b, ())) ->
      match (Interval.intersect a b, Interval.intersect b a) with
      | None, None -> true
      | Some x, Some y -> Interval.equal x y
      | _ -> false)

let interval_gen =
  QCheck2.Gen.(
    map2
      (fun a b -> Interval.make (Chronon.of_offset (min a b)) (Chronon.of_offset (max a b)))
      (int_range (-50) 50) (int_range (-50) 50))

let prop_length_positive =
  QCheck2.Test.make ~name:"length >= 1" ~count:300 interval_gen (fun i ->
      Interval.length i >= 1)

let prop_during_implies_overlaps =
  QCheck2.Test.make ~name:"during implies overlaps" ~count:500
    QCheck2.Gen.(pair interval_gen interval_gen)
    (fun (a, b) -> (not (Interval.during a b)) || Interval.overlaps a b)

(* ------------------------------------------------------------------ *)
(* Interval_set *)

let test_set_construction () =
  let s = iset [ (11, 17); (4, 10); (4, 10); (-4, 3) ] in
  check_int "dedup + sort" 3 (Interval_set.cardinal s);
  check_bool "first" true
    (Interval.equal (Option.get (Interval_set.first s)) (iv (-4) 3));
  check_bool "last" true
    (Interval.equal (Option.get (Interval_set.last s)) (iv 11 17))

let test_set_nth () =
  let s = iset [ (1, 3); (4, 10); (11, 17); (18, 24); (25, 31) ] in
  check_bool "nth 3" true (Interval.equal (Interval_set.nth s 3) (iv 11 17));
  check_bool "nth_from_end 2" true
    (Interval.equal (Interval_set.nth_from_end s 2) (iv 18 24));
  Alcotest.check_raises "nth out of range" Not_found (fun () ->
      ignore (Interval_set.nth s 6));
  Alcotest.check_raises "nth zero" Not_found (fun () -> ignore (Interval_set.nth s 0))

(* The EMP-DAYS return expression from section 3.3:
   LDOM - LDOM_HOL + LAST_BUS_DAY, all element-wise. *)
let test_set_elementwise_emp_days () =
  let ldom = iset [ (31, 31); (59, 59); (90, 90) ] in
  let ldom_hol = iset [ (31, 31); (90, 90) ] in
  let last_bus = iset [ (30, 30); (88, 88) ] in
  let result = Interval_set.union (Interval_set.diff ldom ldom_hol) last_bus in
  check_set "EMP-DAYS result" (iset [ (30, 30); (59, 59); (88, 88) ]) result

let test_set_pointwise () =
  let a = iset [ (1, 10) ] and b = iset [ (5, 20) ] in
  check_set "pointwise union coalesces" (iset [ (1, 20) ]) (Interval_set.pointwise_union a b);
  check_set "pointwise inter" (iset [ (5, 10) ]) (Interval_set.pointwise_inter a b);
  check_set "pointwise diff" (iset [ (1, 4) ]) (Interval_set.pointwise_diff a b);
  (* Across the zero hole: (-4,3) minus (1,3) leaves (-4,-1). *)
  check_set "diff across zero"
    (iset [ (-4, -1) ])
    (Interval_set.pointwise_diff (iset [ (-4, 3) ]) (iset [ (1, 3) ]));
  check_set "coalesce adjacent across zero"
    (iset [ (-2, 2) ])
    (Interval_set.coalesce (iset [ (-2, -1); (1, 2) ]))

let test_set_windowing () =
  let weeks = iset [ (-4, 3); (4, 10); (11, 17); (18, 24); (25, 31); (32, 38) ] in
  let jan = iv 1 31 in
  check_set "clip = strict overlaps result"
    (iset [ (1, 3); (4, 10); (11, 17); (18, 24); (25, 31) ])
    (Interval_set.clip weeks jan);
  check_set "restrict = relaxed overlaps result"
    (iset [ (-4, 3); (4, 10); (11, 17); (18, 24); (25, 31) ])
    (Interval_set.restrict weeks jan)

(* Model-based checking of the pointwise algebra: compare chronon
   membership against boolean set operations. *)
let small_set_gen =
  QCheck2.Gen.(
    map
      (fun l ->
        Interval_set.of_list
          (List.map
             (fun (a, b) ->
               Interval.make (Chronon.of_offset (min a b)) (Chronon.of_offset (max a b)))
             l))
      (list_size (int_range 0 6) (pair (int_range (-15) 15) (int_range (-15) 15))))

let chronon_domain =
  List.filter (fun c -> c <> 0) (List.init 81 (fun i -> i - 40))

let pointwise_model name op model =
  QCheck2.Test.make ~name ~count:300
    QCheck2.Gen.(pair small_set_gen small_set_gen)
    (fun (a, b) ->
      let r = op a b in
      List.for_all
        (fun c ->
          Interval_set.contains_chronon r c
          = model (Interval_set.contains_chronon a c) (Interval_set.contains_chronon b c))
        chronon_domain)

let prop_pw_union = pointwise_model "pointwise union model" Interval_set.pointwise_union ( || )
let prop_pw_inter = pointwise_model "pointwise inter model" Interval_set.pointwise_inter ( && )

let prop_pw_diff =
  pointwise_model "pointwise diff model" Interval_set.pointwise_diff (fun x y -> x && not y)

let prop_coalesce_preserves_membership =
  QCheck2.Test.make ~name:"coalesce preserves membership" ~count:300 small_set_gen
    (fun s ->
      let c = Interval_set.coalesce s in
      List.for_all
        (fun x -> Interval_set.contains_chronon s x = Interval_set.contains_chronon c x)
        chronon_domain)

let prop_elementwise_diff_union =
  QCheck2.Test.make ~name:"(a - b) inter b = empty" ~count:300
    QCheck2.Gen.(pair small_set_gen small_set_gen)
    (fun (a, b) -> Interval_set.is_empty (Interval_set.inter (Interval_set.diff a b) b))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "cal_interval"
    [
      ( "chronon",
        [
          Alcotest.test_case "basics" `Quick test_chronon_basics;
          Alcotest.test_case "check" `Quick test_chronon_check;
        ] );
      ( "interval",
        [
          Alcotest.test_case "make/length" `Quick test_interval_make;
          Alcotest.test_case "relations" `Quick test_interval_relations;
          Alcotest.test_case "ops" `Quick test_interval_ops;
        ] );
      ( "interval_set",
        [
          Alcotest.test_case "construction" `Quick test_set_construction;
          Alcotest.test_case "nth" `Quick test_set_nth;
          Alcotest.test_case "EMP-DAYS arithmetic" `Quick test_set_elementwise_emp_days;
          Alcotest.test_case "pointwise" `Quick test_set_pointwise;
          Alcotest.test_case "windowing" `Quick test_set_windowing;
        ] );
      qsuite "chronon-props" [ prop_offset_roundtrip; prop_chronon_never_zero; prop_add_diff ];
      qsuite "interval-props"
        [ prop_intersect_commutes; prop_length_positive; prop_during_implies_overlaps ];
      qsuite "set-props"
        [
          prop_pw_union;
          prop_pw_inter;
          prop_pw_diff;
          prop_coalesce_preserves_membership;
          prop_elementwise_diff_union;
        ];
    ]
