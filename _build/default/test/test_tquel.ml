(* Tests for the mini-TQUEL baseline (sections 1-2 of the paper): what it
   can express — and, crucially, what it cannot without enumerating time
   points by hand. *)

open Cal_db
open Cal_tquel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let setup () =
  let db = Tquel.create_db () in
  let run s =
    match Tquel.run db s with
    | r -> r
    | exception Tquel.Parse_error e -> Alcotest.failf "tquel parse: %s (%s)" e s
    | exception Trel.Tquel_error e -> Alcotest.failf "tquel: %s (%s)" e s
  in
  ignore (run "create gnp (value)");
  (* The paper's GNP framing: the series is valid over (Jan 1 1985, Dec
     31 1993); in TQUEL each observation gets an explicit interval. *)
  ignore (run "append gnp (value = 4000.0) valid from @1 to @90");
  ignore (run "append gnp (value = 4045.0) valid from @91 to @181");
  ignore (run "append gnp (value = 4090.0) valid from @182 to @273");
  ignore (run "append gnp (value = 4135.0) valid from @274 to @365");
  (db, run)

let rows_of = function
  | Tquel.Rows { rows; _ } -> rows
  | Tquel.Done _ -> Alcotest.fail "expected rows"

let test_create_append_retrieve () =
  let _, run = setup () in
  check_int "all observations" 4 (List.length (rows_of (run "retrieve (value) from gnp")))

let test_when_clause () =
  let _, run = setup () in
  (* The paper: TQUEL can express the containing interval... *)
  (match rows_of (run "retrieve (value) from gnp when gnp overlap interval(@100, @200)") with
  | [ [| Value.Float 4045. |]; [| Value.Float 4090. |] ] -> ()
  | rows -> Alcotest.failf "overlap: %d rows" (List.length rows));
  (match rows_of (run "retrieve (value) from gnp when gnp precede interval(@182, @365)") with
  | [ [| Value.Float 4000. |]; [| Value.Float 4045. |] ] -> ()
  | _ -> Alcotest.fail "precede");
  (match rows_of (run "retrieve (value) from gnp when gnp follow interval(@1, @90)") with
  | rows -> check_int "follow" 3 (List.length rows));
  (match rows_of (run "retrieve (value) from gnp when gnp equal interval(@91, @181)") with
  | [ [| Value.Float 4045. |] ] -> ()
  | _ -> Alcotest.fail "equal");
  match rows_of (run "retrieve (value) from gnp when gnp contain interval(@100, @150)") with
  | [ [| Value.Float 4045. |] ] -> ()
  | _ -> Alcotest.fail "contain"

let test_where_and_valid_projection () =
  let _, run = setup () in
  (match rows_of (run "retrieve (value) from gnp where value > 4050.0") with
  | rows -> check_int "scalar where" 2 (List.length rows));
  match rows_of (run "retrieve (value) from gnp when gnp equal interval(@1, @90) valid") with
  | [ [| Value.Float 4000.; Value.Interval iv |] ] ->
    check_bool "validity projected" true (Interval.lo iv = 1 && Interval.hi iv = 90)
  | _ -> Alcotest.fail "valid projection"

let test_parse_errors () =
  let db = Tquel.create_db () in
  let bad s =
    match Tquel.run db s with
    | _ -> Alcotest.failf "expected parse error: %s" s
    | exception Tquel.Parse_error _ -> ()
    | exception Trel.Tquel_error _ -> ()
  in
  bad "retrieve (x)";
  bad "append gnp (value = 1.0)";
  bad "retrieve (value) from gnp when gnp nextto interval(@1, @2)";
  bad "retrieve (value) from nosuch"

(* The expressiveness gap, made concrete: "value on the last day of every
   quarter" needs the quarter-end days. In TQUEL they must be enumerated
   into data by the application; in the calendar system they are one
   expression. Both routes give the same answer - but only one of them
   survives a change of calendar without re-enumerating. *)
let test_expressiveness_gap () =
  check_bool "interval comparisons expressible" true (Tquel.expressible `Interval_comparison);
  check_bool "calendric sets inexpressible" false (Tquel.expressible `Calendric_set);
  check_bool "holiday adjustment inexpressible" false (Tquel.expressible `Holiday_adjustment);
  let db, run = setup () in
  ignore db;
  (* TQUEL route: the application enumerates quarter ends by hand. *)
  ignore (run "create quarter_ends (day)");
  List.iter
    (fun d -> ignore (run (Printf.sprintf "append quarter_ends (day = @%d) valid from @%d to @%d" d d d)))
    [ 90; 181; 273; 365 ];
  let tquel_values =
    List.concat_map
      (fun d ->
        rows_of
          (run (Printf.sprintf "retrieve (value) from gnp when gnp contain interval(@%d, @%d)" d d)))
      [ 90; 181; 273; 365 ]
  in
  (* Calendar route: the quarter ends are an expression, not data. *)
  let ctx =
    Cal_lang.Context.create ~epoch:(Civil.make 1985 1 1)
      ~lifespan:(Civil.make 1985 1 1, Civil.make 1985 12 31)
      ~env:(Cal_lang.Env.create ()) ()
  in
  let expr =
    match Cal_lang.Parser.expr "[n]/DAYS:during:([3,6,9,12]/MONTHS:during:YEARS)" with
    | Ok e -> e
    | Error e -> Alcotest.failf "%s" e
  in
  let cal, _ = Cal_lang.Interp.eval_expr_planned ctx expr in
  let days =
    Interval_set.to_list (Calendar.flatten cal)
    |> List.map Interval.lo
    |> List.filter (fun d -> d >= 1 && d <= 365)
  in
  Alcotest.(check (list int)) "calendar generates the enumerated days" [ 90; 181; 273; 365 ] days;
  check_int "same answers through both routes" 4 (List.length tquel_values)

let () =
  Alcotest.run "cal_tquel"
    [
      ( "tquel",
        [
          Alcotest.test_case "create/append/retrieve" `Quick test_create_append_retrieve;
          Alcotest.test_case "when clause tempops" `Quick test_when_clause;
          Alcotest.test_case "where + valid projection" `Quick test_where_and_valid_projection;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "expressiveness gap (paper section 1)" `Quick test_expressiveness_gap;
        ] );
    ]
