(* Integration tests for the session façade: calendar ADT in the DB,
   CALENDARS system table (Figure 1), on-clause through the real
   resolver, date operators with user-defined arithmetic, end-to-end
   rules. *)

open Cal_db
open Calrules

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let session () =
  Session.create ~epoch:(Civil.make 1993 1 1)
    ~lifespan:(Civil.make 1993 1 1, Civil.make 1999 12 31)
    ()

let run s q = Session.query_exn s q

let rows_of = function
  | Exec.Rows { rows; _ } -> rows
  | _ -> Alcotest.fail "expected rows"

(* ------------------------------------------------------------------ *)

let test_figure1_calendars_tuple () =
  let s = session () in
  (match Session.define_calendar s ~name:"Tuesdays" ~script:"{ return ([2]/DAYS:during:WEEKS); }" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "define: %s" e);
  match Session.calendar_row s "Tuesdays" with
  | Some [| Value.Text name; Value.Text script; Value.Text plan; Value.Interval _;
            Value.Text gran; Value.Array [||] |] ->
    check_str "name" "Tuesdays" name;
    check_bool "script stored" true (String.length script > 0);
    check_bool "plan stored" true (String.length plan > 0);
    check_str "granularity inferred" "DAYS" gran
  | Some _ -> Alcotest.fail "unexpected row shape"
  | None -> Alcotest.fail "no CALENDARS row"

let test_duplicate_calendar_rejected () =
  let s = session () in
  (match Session.define_calendar s ~name:"X" ~script:"{ return (DAYS); }" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "define: %s" e);
  check_bool "duplicate" true
    (Result.is_error (Session.define_calendar s ~name:"x" ~script:"{ return (WEEKS); }"))

let test_eval_through_session () =
  let s = session () in
  (match Session.define_calendar s ~name:"Mondays" ~script:"{ return ([1]/DAYS:during:WEEKS); }" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "define: %s" e);
  match Session.eval_calendar s "Mondays:during:1993/YEARS" with
  | Ok cal ->
    let first = Interval_set.nth (Calendar.flatten cal) 1 in
    check_int "first monday of 1993 is day 4" 4 (Interval.lo first)
  | Error e -> Alcotest.failf "eval: %s" e

let test_on_clause_end_to_end () =
  let s = session () in
  ignore (run s "create table stock (day chronon valid, price float)");
  for d = 1 to 60 do
    ignore (run s (Printf.sprintf "append stock (day = @%d, price = %d.0)" d (100 + d)))
  done;
  ignore (run s "create index on stock (day)");
  (* Paper's motivating query: closing price on the expiration date (3rd
     Friday of January 1993 = Jan 15). *)
  (match Session.define_calendar s ~name:"Fridays" ~script:"{ return ([5]/DAYS:during:WEEKS); }" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "define: %s" e);
  match
    run s "retrieve (stock.day, stock.price) from stock on \"[3]/Fridays:overlaps:[1]/MONTHS:during:1993/YEARS\""
  with
  | Exec.Rows { rows = [ [| Value.Chronon 15; Value.Float p |] ]; _ } ->
    check_bool "price on expiration" true (p = 115.0)
  | r -> Alcotest.failf "unexpected result: %s"
           (match r with
            | Exec.Rows { rows; _ } -> Printf.sprintf "%d rows" (List.length rows)
            | _ -> "not rows")

let test_date_operators () =
  let s = session () in
  (match rows_of (run s "retrieve (date('1993-01-15'))") with
  | [ [| Value.Chronon 15 |] ] -> ()
  | _ -> Alcotest.fail "date()");
  (match rows_of (run s "retrieve (date_text(@32))") with
  | [ [| Value.Text "1993-02-01" |] ] -> ()
  | _ -> Alcotest.fail "date_text()");
  (match rows_of (run s "retrieve (weekday(date('1993-01-04')))") with
  | [ [| Value.Int 1 |] ] -> () (* Monday *)
  | _ -> Alcotest.fail "weekday()");
  (* The Sto90a bond example: 30/360 counts 180 days over a half year,
     ACT/365 does not. *)
  (match rows_of (run s "retrieve (day_count('30/360', date('1993-01-15'), date('1993-07-15')))") with
  | [ [| Value.Int 180 |] ] -> ()
  | _ -> Alcotest.fail "30/360 day_count");
  (match rows_of (run s "retrieve (day_count('ACT/365', date('1993-01-15'), date('1993-07-15')))") with
  | [ [| Value.Int 181 |] ] -> ()
  | _ -> Alcotest.fail "ACT/365 day_count");
  match rows_of (run s "retrieve (accrued('30/360', 0.08, 1000.0, date('1993-01-15'), date('1993-07-15')))") with
  | [ [| Value.Float a |] ] -> check_bool "accrued 40" true (abs_float (a -. 40.) < 1e-9)
  | _ -> Alcotest.fail "accrued"

let test_calendar_operators () =
  let s = session () in
  (match rows_of (run s "retrieve (calendar_contains('[2]/DAYS:during:WEEKS', @5))") with
  | [ [| Value.Bool true |] ] -> ()
  | _ -> Alcotest.fail "tuesday contains");
  (match rows_of (run s "retrieve (calendar_contains('[2]/DAYS:during:WEEKS', @6))") with
  | [ [| Value.Bool false |] ] -> ()
  | _ -> Alcotest.fail "wednesday not");
  (* Calendars as first-class database values via the ADT. *)
  ignore (run s "create table cals (name text, val calendar)");
  ignore (run s "append cals (name = 'jan', val = calendar_value('[1]/MONTHS:during:1993/YEARS'))");
  match rows_of (run s "retrieve (val) from cals where name = 'jan'") with
  | [ [| Value.Ext ("calendar", _) |] ] -> ()
  | _ -> Alcotest.fail "calendar value stored and retrieved"

let test_rule_end_to_end () =
  let s = session () in
  ignore (run s "create table log (msg text)");
  (* Every Tuesday (the paper's Proc_X example). *)
  (match run s "define rule tuesdays on calendar \"[2]/DAYS:during:WEEKS\" do append log (msg = 'proc_x')" with
  | Exec.Msg _ -> ()
  | _ -> Alcotest.fail "rule defined");
  Session.advance_days s 31;
  (match rows_of (run s "retrieve (count(msg)) from log") with
  | [ [| Value.Int 4 |] ] -> ()
  | _ -> Alcotest.fail "four tuesdays in january 1993");
  check_str "today after advance" "1993-02-01" (Civil.to_string (Session.today s))

let test_save_load_roundtrip () =
  let s = session () in
  (* Calendars: one derived, one stored. *)
  (match Session.define_calendar s ~name:"Fridays" ~script:"{ return ([5]/DAYS:during:WEEKS); }" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s" e);
  Session.define_stored_calendar s ~name:"HOLIDAYS" [ (31, 31); (90, 90) ];
  (* Data with tricky text, chronons, floats, and an index. *)
  ignore (run s "create table notes (day chronon valid, txt text, score float)");
  ignore (run s "create index on notes (day)");
  ignore (run s "append notes (day = @5, txt = 'simple', score = 1.5)");
  ignore
    (run s
       "append notes (day = @6, txt = 'quote \\' and \\\" double\\nnewline\\ttab', score = -2.25)");
  ignore (run s "append notes (day = @12, txt = 'x', score = 0.1)");
  (* A rule. *)
  ignore (run s "define rule t on calendar \"[2]/DAYS:during:WEEKS\" do append notes (day = @1, txt = 'tick', score = 0.0)");
  let saved = Session.save s in
  let s2 = session () in
  (match Session.load s2 saved with Ok () -> () | Error e -> Alcotest.failf "load: %s" e);
  (* Table content identical. *)
  let rows_of_q sess q = rows_of (run sess q) in
  check_bool "rows equal" true
    (rows_of_q s "retrieve (day, txt, score) from notes" =
     rows_of_q s2 "retrieve (day, txt, score) from notes");
  (* Index restored: probe goes through the B-tree. *)
  let stats = Exec.fresh_stats () in
  (match Exec.run_string s2.Session.catalog ~stats "retrieve (txt) from notes where day = @5" with
  | Ok (Exec.Rows { rows = [ _ ]; _ }) -> ()
  | _ -> Alcotest.fail "indexed row");
  check_int "index used after load" 1 stats.Exec.index_scans;
  (* Calendars restored. *)
  (match Session.eval_calendar s2 "[3]/Fridays:overlaps:[1]/MONTHS:during:1993/YEARS" with
  | Ok cal -> check_bool "third friday" true (Calendar.equal cal (Calendar.of_pairs [ (15, 15) ]))
  | Error e -> Alcotest.failf "calendar after load: %s" e);
  (match Session.eval_calendar s2 "HOLIDAYS" with
  | Ok cal -> check_bool "stored calendar" true
      (Calendar.equal cal (Calendar.of_pairs [ (31, 31); (90, 90) ]))
  | Error e -> Alcotest.failf "stored after load: %s" e);
  (* Rules restored and firing. *)
  Session.advance_days s2 7;
  check_bool "rule fired after load" true (Cal_rules.Manager.fire_count s2.Session.manager "t" >= 1)

let test_dump_rejects_adt_values () =
  let s = session () in
  ignore (run s "create table cals (name text, val calendar)");
  ignore (run s "append cals (name = 'jan', val = calendar_value('[1]/MONTHS:during:1993/YEARS'))");
  match Session.save s with
  | _ -> Alcotest.fail "expected Dump_error"
  | exception Cal_db.Dump.Dump_error _ -> ()

let test_advance_to_date () =
  let s = session () in
  Session.advance_to_date s (Civil.make 1993 3 15);
  check_str "date" "1993-03-15" (Civil.to_string (Session.today s));
  check_int "day chronon" 74 (Session.day_of_date s (Session.today s))

(* The paper's future work (b): complex temporal conditions in rule
   events. An event rule whose condition tests the tuple's valid time
   against a calendar expression is already expressible through the
   calendar_contains operator. *)
let test_temporal_condition_in_event_rule () =
  let s = session () in
  ignore (run s "create table trades (day chronon valid, qty int)");
  ignore (run s "create table weekend_trades (day chronon, qty int)");
  ignore
    (run s
       "define rule offhours on append to trades \
        where calendar_contains('[6,7]/DAYS:during:WEEKS', new.day) \
        do append weekend_trades (day = new.day, qty = new.qty)");
  (* Jan 1993: days 2,3 are Sat/Sun; 4 is Monday. *)
  ignore (run s "append trades (day = @2, qty = 10)");
  ignore (run s "append trades (day = @3, qty = 20)");
  ignore (run s "append trades (day = @4, qty = 30)");
  ignore (run s "append trades (day = @9, qty = 40)");
  match run s "retrieve (day, qty) from weekend_trades" with
  | Exec.Rows { rows; _ } ->
    let days = List.map (fun r -> match r.(0) with Value.Chronon c -> c | _ -> -1) rows in
    Alcotest.(check (list int)) "only weekend appends cascaded" [ 2; 3; 9 ]
      (List.sort Int.compare days)
  | _ -> Alcotest.fail "expected rows"

(* Fuzz: random command sequences against a fixed schema must never let
   an exception escape Session.query (errors come back as Error _). *)
let command_gen =
  let open QCheck2.Gen in
  let day = map (fun d -> Printf.sprintf "@%d" d) (int_range 1 365) in
  let price = map (fun p -> Printf.sprintf "%d.5" p) (int_range 1 500) in
  oneof
    [
      map2 (fun d p -> Printf.sprintf "append stock (day = %s, price = %s)" d p) day price;
      map (fun d -> Printf.sprintf "retrieve (price) from stock where day = %s" d) day;
      map (fun d -> Printf.sprintf "delete stock where day = %s" d) day;
      map2 (fun d p -> Printf.sprintf "replace stock (price = %s) where day > %s" p d) price day;
      return "retrieve (count(price), avg(price)) from stock";
      return "retrieve (price) from stock on \"[2]/DAYS:during:WEEKS\"";
      return "retrieve (day, n = count(price)) from stock group by day";
      map (fun d -> Printf.sprintf "retrieve (calendar_contains('[n]/DAYS:during:MONTHS', %s))" d) day;
      (* Deliberately broken inputs: must error, not raise. *)
      return "retrieve (nosuch) from stock";
      return "append stock (day = 'oops', price = 1.0)";
      return "retrieve (price) from missing_table";
      return "this is not a query";
    ]

let prop_session_fuzz =
  QCheck2.Test.make ~name:"random command sequences never raise" ~count:30
    QCheck2.Gen.(list_size (int_range 5 30) command_gen)
    (fun commands ->
      let s = session () in
      (match Session.query s "create table stock (day chronon valid, price float)" with
      | Ok _ -> ()
      | Error e -> failwith e);
      ignore (Session.query s "create index on stock (day)");
      List.for_all
        (fun cmd -> match Session.query s cmd with Ok _ | Error _ -> true)
        commands)

let () =
  Alcotest.run "calrules-session"
    [
      ( "session",
        [
          Alcotest.test_case "figure 1 CALENDARS tuple" `Quick test_figure1_calendars_tuple;
          Alcotest.test_case "duplicate rejected" `Quick test_duplicate_calendar_rejected;
          Alcotest.test_case "eval through session" `Quick test_eval_through_session;
          Alcotest.test_case "on-clause end to end" `Quick test_on_clause_end_to_end;
          Alcotest.test_case "date operators" `Quick test_date_operators;
          Alcotest.test_case "calendar operators + ADT" `Quick test_calendar_operators;
          Alcotest.test_case "rule end to end" `Quick test_rule_end_to_end;
          Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip;
          Alcotest.test_case "dump rejects ADT values" `Quick test_dump_rejects_adt_values;
          Alcotest.test_case "advance to date" `Quick test_advance_to_date;
        ] );
      ( "future-work",
        [
          Alcotest.test_case "temporal condition in event rule (FW b)" `Quick
            test_temporal_condition_in_event_rule;
        ] );
      ("fuzz", [ QCheck_alcotest.to_alcotest prop_session_fuzz ]);
    ]
