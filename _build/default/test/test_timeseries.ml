(* Tests for regular time-series with calendar-implied timepoints and the
   sequence-pattern search of the paper's future-work item (a). *)

open Cal_lang
open Cal_timeseries

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let epoch85 = Civil.make 1985 1 1

let ctx () =
  Context.create ~epoch:epoch85 ~lifespan:(Civil.make 1985 1 1, Civil.make 1993 12 31)
    ~env:(Env.create ()) ()

let series ?window expr values =
  match Regular.create (ctx ()) ?window ~expr (Array.of_list values) with
  | Ok s -> s
  | Error e -> Alcotest.failf "series creation failed: %s" e

(* The paper's GNP example: valued on the last day of every quarter,
   1985-1993; quarters are caloperate(MONTHS,*;3), i.e. built from months
   here via nested selection: last day of every 3rd month is the quarter
   end. We use the last day of MONTHS 3,6,9,12 per year. *)
let gnp_expr = "[n]/DAYS:during:([3,6,9,12]/MONTHS:during:YEARS)"

let test_gnp_timepoints () =
  let s = series gnp_expr (List.init 36 float_of_int) in
  check_int "36 quarterly observations" 36 (Regular.length s);
  (* First timepoint: Mar 31 1985 = day 90 (1985 not leap). *)
  check_int "first quarter end" 90 (Interval.lo (Regular.timepoint s 0));
  (* Second: Jun 30 1985 = day 181. *)
  check_int "second quarter end" 181 (Interval.lo (Regular.timepoint s 1));
  (* Fourth: Dec 31 1985 = day 365. *)
  check_int "year end" 365 (Interval.lo (Regular.timepoint s 3))

let test_lookup_by_chronon () =
  let s = series gnp_expr [ 10.; 20.; 30.; 40. ] in
  check_bool "at quarter end" true (Regular.at s 90 = Some 10.);
  check_bool "mid-quarter misses" true (Regular.at s 50 = None);
  check_bool "index_of_chronon" true (Regular.index_of_chronon s 181 = Some 1)

let test_too_few_timepoints_rejected () =
  match Regular.create (ctx ()) ~expr:"[n]/DAYS:during:YEARS" (Array.make 100 0.) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error: 9-year lifespan cannot yield 100 annual points"

let test_slice_and_aggregate () =
  (* Daily series over January-February 1985. *)
  let s =
    series ~window:(Interval.make 1 59) "DAYS" (List.init 59 (fun i -> float_of_int (i + 1)))
  in
  let jan = Interval_set.of_pairs [ (1, 31) ] in
  let sliced = Regular.slice s jan in
  check_int "january days" 31 (Regular.length sliced);
  let months = Interval_set.of_pairs [ (1, 31); (32, 59) ] in
  (match Regular.aggregate s ~periods:months ~agg:Regular.Mean with
  | [ (_, m1); (_, m2) ] ->
    check_bool "january mean" true (abs_float (m1 -. 16.) < 1e-9);
    check_bool "february mean" true (abs_float (m2 -. 45.5) < 1e-9)
  | _ -> Alcotest.fail "expected two periods");
  match Regular.aggregate s ~periods:months ~agg:Regular.Last with
  | [ (_, l1); (_, l2) ] ->
    check_bool "last of january" true (l1 = 31.);
    check_bool "last of february" true (l2 = 59.)
  | _ -> Alcotest.fail "expected two periods"

let test_map2_alignment () =
  let a = series ~window:(Interval.make 1 10) "DAYS" (List.init 10 (fun i -> float_of_int i)) in
  let b = series ~window:(Interval.make 1 10) "DAYS" (List.init 10 (fun i -> float_of_int (2 * i))) in
  let c = Regular.map2 (fun x y -> y -. x) a b in
  check_int "aligned length" 10 (Regular.length c);
  check_bool "pointwise diff" true (Regular.value c 7 = 7.)

(* ------------------------------------------------------------------ *)
(* Pattern search: S_t < Next(S_t) *)

let test_increases () =
  let s = series ~window:(Interval.make 1 6) "DAYS" [ 1.; 3.; 2.; 5.; 5.; 7. ] in
  let incr = Pattern.increases s in
  Alcotest.(check (list int)) "increase timepoints" [ 1; 3; 5 ]
    (List.map Interval.lo incr);
  let decr = Pattern.decreases s in
  Alcotest.(check (list int)) "decrease timepoints" [ 2 ] (List.map Interval.lo decr)

let test_runs_and_shapes () =
  let s =
    series ~window:(Interval.make 1 8) "DAYS" [ 1.; 2.; 3.; 1.; 2.; 3.; 4.; 0. ]
  in
  (match Pattern.increasing_runs ~min_length:2 s with
  | [ (0, 3); (3, 4) ] -> ()
  | runs ->
    Alcotest.failf "unexpected runs: %s"
      (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) runs)));
  (* Peak shape: up then down. *)
  Alcotest.(check (list int)) "peaks" [ 0; 4 ]
    (Pattern.matches_shape s [ `Up; `Up; `Down ])

let test_moving_average () =
  let s = series ~window:(Interval.make 1 5) "DAYS" [ 1.; 2.; 3.; 4.; 5. ] in
  let ma = Pattern.moving_average s ~w:3 in
  Alcotest.(check int) "output length" 3 (Array.length ma);
  check_bool "values" true (ma = [| 2.; 3.; 4. |]);
  Alcotest.check_raises "bad window"
    (Invalid_argument "Pattern.moving_average: window must be positive") (fun () ->
      ignore (Pattern.moving_average s ~w:0))

let prop_increases_sound =
  QCheck2.Test.make ~name:"every reported increase is a real increase" ~count:200
    QCheck2.Gen.(list_size (int_range 2 40) (float_range (-100.) 100.))
    (fun values ->
      let s = series ~window:(Interval.make 1 (List.length values)) "DAYS" values in
      let arr = Array.of_list values in
      List.for_all
        (fun i -> arr.(i) < arr.(i + 1))
        (Pattern.search_pairs s ~pred:(fun a b -> a < b)))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "cal_timeseries"
    [
      ( "regular",
        [
          Alcotest.test_case "GNP quarterly timepoints" `Quick test_gnp_timepoints;
          Alcotest.test_case "lookup by chronon" `Quick test_lookup_by_chronon;
          Alcotest.test_case "too few timepoints" `Quick test_too_few_timepoints_rejected;
          Alcotest.test_case "slice + aggregate" `Quick test_slice_and_aggregate;
          Alcotest.test_case "map2 alignment" `Quick test_map2_alignment;
        ] );
      ( "pattern",
        [
          Alcotest.test_case "increases (future work a)" `Quick test_increases;
          Alcotest.test_case "runs and shapes" `Quick test_runs_and_shapes;
          Alcotest.test_case "moving average" `Quick test_moving_average;
        ] );
      qsuite "pattern-props" [ prop_increases_sound ];
    ]
