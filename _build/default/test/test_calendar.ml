(* Tests for the calendar algebra (section 3.1/3.2). The golden values are
   the paper's worked examples with epoch Jan 1 1993 for section 3.1 and
   Jan 1 1987 for the generate example of section 3.2. *)

let epoch93 = Civil.make 1993 1 1
let epoch87 = Civil.make 1987 1 1
let iv lo hi = Interval.make lo hi

let cal_testable = Alcotest.testable Calendar.pp Calendar.equal
let check_cal = Alcotest.check cal_testable
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)


let gen93 ~coarse ~fine ~window =
  Calendar_gen.generate ~epoch:epoch93 ~coarse ~fine ~window ()

(* WEEKS and MONTHS of 1993 as day intervals, matching the paper. *)
let weeks_1993 =
  gen93 ~coarse:Granularity.Weeks ~fine:Granularity.Days ~window:(iv (-4) 368)

let months_1993 =
  gen93 ~coarse:Granularity.Months ~fine:Granularity.Days ~window:(iv 1 365)

let jan_1993 = Calendar.of_interval (iv 1 31)
let weeks_cal = Calendar.leaf weeks_1993
let months_cal = Calendar.leaf months_1993

(* ------------------------------------------------------------------ *)
(* Basic structure *)

let test_order_and_size () =
  check_int "leaf order" 1 (Calendar.order weeks_cal);
  let o2 = Calendar.node [ weeks_cal; months_cal ] in
  check_int "node order" 2 (Calendar.order o2);
  check_int "size" (Interval_set.cardinal weeks_1993 + Interval_set.cardinal months_1993)
    (Calendar.size o2);
  check_bool "empty" true (Calendar.is_empty Calendar.empty);
  check_bool "non-empty" false (Calendar.is_empty weeks_cal)

let test_simplify () =
  let n = Calendar.node [ Calendar.of_pairs [ (1, 1) ]; Calendar.of_pairs [ (5, 5) ] ] in
  check_cal "node of singletons flattens" (Calendar.of_pairs [ (1, 1); (5, 5) ])
    (Calendar.simplify n);
  let single = Calendar.node [ weeks_cal ] in
  check_cal "single child collapses" weeks_cal (Calendar.simplify single)

(* ------------------------------------------------------------------ *)
(* Paper section 3.1 golden examples *)

let test_weeks_1993_values () =
  let expected = [ (-4, 3); (4, 10); (11, 17); (18, 24); (25, 31); (32, 38); (39, 45) ] in
  let actual =
    List.filteri (fun i _ -> i < 7) (Interval_set.to_pairs weeks_1993)
  in
  Alcotest.(check (list (pair int int))) "first weeks of 1993" expected actual

let test_months_1993_values () =
  let actual = List.filteri (fun i _ -> i < 4) (Interval_set.to_pairs months_1993) in
  Alcotest.(check (list (pair int int)))
    "first months of 1993"
    [ (1, 31); (32, 59); (60, 90); (91, 120) ]
    actual

let test_weeks_during_jan () =
  check_cal "WEEKS:during:Jan-1993"
    (Calendar.of_pairs [ (4, 10); (11, 17); (18, 24); (25, 31) ])
    (Calendar.foreach ~strict:true Listop.During weeks_cal jan_1993)

let test_weeks_during_year () =
  let r = Calendar.foreach ~strict:true Listop.During weeks_cal months_cal in
  check_int "order 2" 2 (Calendar.order r);
  match r with
  | Calendar.Node (jan :: feb :: mar :: apr :: _) ->
    check_cal "january weeks" (Calendar.of_pairs [ (4, 10); (11, 17); (18, 24); (25, 31) ]) jan;
    check_cal "february weeks" (Calendar.of_pairs [ (32, 38); (39, 45); (46, 52); (53, 59) ]) feb;
    check_cal "march weeks" (Calendar.of_pairs [ (60, 66); (67, 73); (74, 80); (81, 87) ]) mar;
    check_cal "april weeks" (Calendar.of_pairs [ (95, 101); (102, 108); (109, 115) ]) apr
  | _ -> Alcotest.fail "expected order-2 node"

let test_weeks_overlaps_jan_strict () =
  check_cal "WEEKS:overlaps:Jan-1993 (clipped)"
    (Calendar.of_pairs [ (1, 3); (4, 10); (11, 17); (18, 24); (25, 31) ])
    (Calendar.foreach ~strict:true Listop.Overlaps weeks_cal jan_1993)

let test_weeks_overlaps_jan_relaxed () =
  check_cal "WEEKS.overlaps.Jan-1993 (whole weeks)"
    (Calendar.of_pairs [ (-4, 3); (4, 10); (11, 17); (18, 24); (25, 31) ])
    (Calendar.foreach ~strict:false Listop.Overlaps weeks_cal jan_1993)

let test_third_week_of_january () =
  let overlaps = Calendar.foreach ~strict:true Listop.Overlaps weeks_cal jan_1993 in
  check_cal "[3]/WEEKS:overlaps:Jan-1993"
    (Calendar.of_pairs [ (11, 17) ])
    (Calendar.select [ Calendar.Nth 3 ] overlaps)

let test_third_week_of_every_month () =
  let overlaps = Calendar.foreach ~strict:true Listop.Overlaps weeks_cal months_cal in
  let thirds = Calendar.select [ Calendar.Nth 3 ] overlaps in
  check_int "selection flattens to order 1" 1 (Calendar.order thirds);
  let actual = List.filteri (fun i _ -> i < 4) (Interval_set.to_pairs (Calendar.flatten thirds)) in
  Alcotest.(check (list (pair int int)))
    "[3]/WEEKS:overlaps:Year-1993"
    [ (11, 17); (46, 52); (74, 80); (102, 108) ]
    actual

(* Last day of every month: [n]/DAYS:during:MONTHS. *)
let test_last_day_of_month () =
  let days =
    Calendar.leaf (gen93 ~coarse:Granularity.Days ~fine:Granularity.Days ~window:(iv 1 120))
  in
  let per_month = Calendar.foreach ~strict:true Listop.During days months_cal in
  let ldom = Calendar.select [ Calendar.Last ] per_month in
  let actual = List.filteri (fun i _ -> i < 4) (Interval_set.to_pairs (Calendar.flatten ldom)) in
  Alcotest.(check (list (pair int int)))
    "LDOM" [ (31, 31); (59, 59); (90, 90); (120, 120) ] actual

(* [n]/AM_BUS_DAYS:<:LDOM_HOL from the EMP-DAYS script. *)
let test_last_business_day_before () =
  let holidays = [ 31; 89; 90 ] in
  let bus_days =
    Calendar.of_pairs
      (List.filter_map
         (fun i -> if List.mem i holidays then None else Some (i, i))
         (List.init 120 (fun i -> i + 1)))
  in
  let ldom_hol = Calendar.of_pairs [ (31, 31); (90, 90) ] in
  let before = Calendar.foreach ~strict:true Listop.Before bus_days ldom_hol in
  check_int "order-2 components" 2 (Calendar.order before);
  check_cal "last business days"
    (Calendar.of_pairs [ (30, 30); (88, 88) ])
    (Calendar.select [ Calendar.Last ] before)

(* ------------------------------------------------------------------ *)
(* Section 3.2: generate and caloperate *)

let test_generate_years_in_days_1987 () =
  (* generate(YEARS, DAYS, [Jan 1 1987, Jan 3 1992]) from the paper. *)
  let window =
    Unit_system.chronon_span_of_dates ~epoch:epoch87 Granularity.Days (Civil.make 1987 1 1)
      (Civil.make 1992 1 3)
  in
  let r =
    Calendar_gen.generate ~epoch:epoch87 ~coarse:Granularity.Years ~fine:Granularity.Days
      ~window ()
  in
  Alcotest.(check (list (pair int int)))
    "years as day intervals"
    [ (1, 365); (366, 731); (732, 1096); (1097, 1461); (1462, 1826); (1827, 1829) ]
    (Interval_set.to_pairs r)

let test_generate_misaligned () =
  Alcotest.check_raises "weeks under years"
    (Calendar_gen.Misaligned (Granularity.Years, Granularity.Weeks)) (fun () ->
      ignore
        (Calendar_gen.generate ~epoch:epoch87 ~coarse:Granularity.Years
           ~fine:Granularity.Weeks ~window:(iv 1 52) ()))

let test_generate_too_large () =
  Alcotest.check_raises "limit enforced" (Calendar_gen.Generation_too_large 1000)
    (fun () ->
      ignore
        (Calendar_gen.generate ~max_intervals:999 ~epoch:epoch87 ~coarse:Granularity.Days
           ~fine:Granularity.Days ~window:(iv 1 1000) ()))

let test_caloperate_weeks () =
  (* WEEKS = caloperate(days-of-year, *; 7) = {(1,7),(8,14),...}. *)
  let days = gen93 ~coarse:Granularity.Days ~fine:Granularity.Days ~window:(iv 1 365) in
  let weeks = Calendar_gen.caloperate ~counts:[ 7 ] days in
  check_int "52 complete weeks" 52 (Interval_set.cardinal weeks);
  Alcotest.(check (list (pair int int)))
    "first groups"
    [ (1, 7); (8, 14); (15, 21) ]
    (List.filteri (fun i _ -> i < 3) (Interval_set.to_pairs weeks))

let test_caloperate_quarters () =
  let quarters = Calendar_gen.caloperate ~counts:[ 3 ] months_1993 in
  Alcotest.(check (list (pair int int)))
    "quarters of 1993"
    [ (1, 90); (91, 181); (182, 273); (274, 365) ]
    (Interval_set.to_pairs quarters)

let test_caloperate_circular () =
  (* Alternating 2,3 groups over ten singletons. *)
  let s = Interval_set.of_pairs (List.init 10 (fun i -> (i + 1, i + 1))) in
  let r = Calendar_gen.caloperate ~counts:[ 2; 3 ] s in
  Alcotest.(check (list (pair int int)))
    "circular counts" [ (1, 2); (3, 5); (6, 7); (8, 10) ] (Interval_set.to_pairs r)

let test_caloperate_end () =
  let s = Interval_set.of_pairs (List.init 10 (fun i -> (i + 1, i + 1))) in
  let r = Calendar_gen.caloperate ~end_:6 ~counts:[ 2 ] s in
  Alcotest.(check (list (pair int int)))
    "stops at end" [ (1, 2); (3, 4); (5, 6) ] (Interval_set.to_pairs r);
  Alcotest.check_raises "empty counts"
    (Invalid_argument "Calendar_gen.caloperate: empty count list") (fun () ->
      ignore (Calendar_gen.caloperate ~counts:[] s))

(* ------------------------------------------------------------------ *)
(* Selection variants *)

let test_selection_variants () =
  let s = Calendar.of_pairs [ (1, 3); (4, 10); (11, 17); (18, 24); (25, 31) ] in
  check_cal "[-2]" (Calendar.of_pairs [ (18, 24) ]) (Calendar.select [ Calendar.Nth (-2) ] s);
  check_cal "[n]" (Calendar.of_pairs [ (25, 31) ]) (Calendar.select [ Calendar.Last ] s);
  check_cal "[1,3]"
    (Calendar.of_pairs [ (1, 3); (11, 17) ])
    (Calendar.select [ Calendar.Nth 1; Calendar.Nth 3 ] s);
  check_cal "[2..4]"
    (Calendar.of_pairs [ (4, 10); (11, 17); (18, 24) ])
    (Calendar.select [ Calendar.Range (2, 4) ] s);
  check_cal "out of range skipped" Calendar.empty (Calendar.select [ Calendar.Nth 9 ] s);
  check_cal "label 1995 of years starting 1993"
    (Calendar.of_pairs [ (11, 17) ])
    (Calendar.nth_by_label ~base:1993 1995 s)

(* ------------------------------------------------------------------ *)
(* Element-wise operations: the EMP-DAYS return expression *)

let test_elementwise_script_ops () =
  let ldom = Calendar.of_pairs [ (31, 31); (59, 59); (90, 90) ] in
  let ldom_hol = Calendar.of_pairs [ (31, 31); (90, 90) ] in
  let last_bus = Calendar.of_pairs [ (30, 30); (88, 88) ] in
  check_cal "LDOM - LDOM_HOL + LAST_BUS_DAY"
    (Calendar.of_pairs [ (30, 30); (59, 59); (88, 88) ])
    (Calendar.union (Calendar.diff ldom ldom_hol) last_bus);
  check_cal "inter" ldom_hol (Calendar.inter ldom ldom_hol)

(* ------------------------------------------------------------------ *)
(* Properties *)

let small_set_gen =
  QCheck2.Gen.(
    map
      (fun l ->
        Interval_set.of_list
          (List.map
             (fun (a, b) ->
               Interval.make (Chronon.of_offset (min a b)) (Chronon.of_offset (max a b)))
             l))
      (list_size (int_range 0 8) (pair (int_range (-30) 30) (int_range (-30) 30))))

let interval_gen =
  QCheck2.Gen.(
    map2
      (fun a b -> Interval.make (Chronon.of_offset (min a b)) (Chronon.of_offset (max a b)))
      (int_range (-30) 30) (int_range (-30) 30))

let listop_gen = QCheck2.Gen.oneofl Listop.all

let prop_strict_subset_of_relaxed =
  QCheck2.Test.make ~name:"strict results lie within relaxed results" ~count:500
    QCheck2.Gen.(triple listop_gen small_set_gen interval_gen)
    (fun (op, s, reference) ->
      let strict =
        Calendar.flatten
          (Calendar.foreach ~strict:true op (Calendar.leaf s) (Calendar.of_interval reference))
      in
      let relaxed =
        Calendar.flatten
          (Calendar.foreach ~strict:false op (Calendar.leaf s) (Calendar.of_interval reference))
      in
      Interval_set.fold
        (fun acc i ->
          acc
          && Interval_set.fold
               (fun found r -> found || Interval.during i r)
               false relaxed)
        true strict)

let prop_during_strict_eq_relaxed =
  QCheck2.Test.make ~name:"during: strict = relaxed" ~count:500
    QCheck2.Gen.(pair small_set_gen interval_gen)
    (fun (s, r) ->
      Calendar.equal
        (Calendar.foreach ~strict:true Listop.During (Calendar.leaf s) (Calendar.of_interval r))
        (Calendar.foreach ~strict:false Listop.During (Calendar.leaf s) (Calendar.of_interval r)))

let prop_overlaps_strict_within_reference =
  QCheck2.Test.make ~name:"strict overlaps clips into reference" ~count:500
    QCheck2.Gen.(pair small_set_gen interval_gen)
    (fun (s, r) ->
      let res =
        Calendar.flatten
          (Calendar.foreach ~strict:true Listop.Overlaps (Calendar.leaf s)
             (Calendar.of_interval r))
      in
      Interval_set.fold (fun acc i -> acc && Interval.during i r) true res)

(* The indexed foreach must agree with the pairwise oracle for every
   listop, strictness, and reference structure. *)
let prop_indexed_foreach_matches_pairwise =
  QCheck2.Test.make ~name:"indexed foreach = pairwise foreach" ~count:800
    QCheck2.Gen.(
      tup4 (oneofl Listop.all) bool small_set_gen small_set_gen)
    (fun (op, strict, lhs, rhs) ->
      let lhs = Calendar.leaf lhs and rhs = Calendar.leaf rhs in
      Calendar.equal
        (Calendar.foreach ~strict op lhs rhs)
        (Calendar.foreach_pairwise ~strict op lhs rhs))

let prop_select_last_is_minus_one =
  QCheck2.Test.make ~name:"[n] = [-1]" ~count:300 small_set_gen (fun s ->
      Calendar.equal
        (Calendar.select [ Calendar.Last ] (Calendar.leaf s))
        (Calendar.select [ Calendar.Nth (-1) ] (Calendar.leaf s)))

let prop_select_size_bounded =
  QCheck2.Test.make ~name:"selection size bounded by input" ~count:300
    QCheck2.Gen.(pair small_set_gen (int_range (-10) 10))
    (fun (s, i) ->
      let sel = if i = 0 then [ Calendar.Last ] else [ Calendar.Nth i ] in
      Calendar.size (Calendar.select sel (Calendar.leaf s)) <= Interval_set.cardinal s)

let aligned_pairs =
  [
    (Granularity.Years, Granularity.Days);
    (Granularity.Months, Granularity.Days);
    (Granularity.Weeks, Granularity.Days);
    (Granularity.Years, Granularity.Months);
    (Granularity.Decades, Granularity.Years);
    (Granularity.Days, Granularity.Hours);
  ]

let prop_generate_tiles_window =
  QCheck2.Test.make ~name:"generate tiles the window exactly" ~count:200
    QCheck2.Gen.(pair (oneofl aligned_pairs) (pair (int_range (-400) 400) (int_range 0 400)))
    (fun ((coarse, fine), (a, len)) ->
      let lo = Chronon.of_offset a and hi = Chronon.of_offset (a + len) in
      let window = Interval.make lo hi in
      let r = Calendar_gen.generate ~epoch:epoch87 ~coarse ~fine ~window () in
      Interval_set.equal
        (Interval_set.coalesce r)
        (Interval_set.singleton window))

let prop_generate_intervals_disjoint_sorted =
  QCheck2.Test.make ~name:"generate yields disjoint consecutive intervals" ~count:200
    QCheck2.Gen.(pair (oneofl aligned_pairs) (int_range (-400) 400))
    (fun ((coarse, fine), a) ->
      let window = Interval.make (Chronon.of_offset a) (Chronon.of_offset (a + 300)) in
      let r = Calendar_gen.generate ~epoch:epoch87 ~coarse ~fine ~window () in
      let rec ok = function
        | a :: (b :: _ as rest) ->
          Chronon.to_offset (Interval.lo b) = Chronon.to_offset (Interval.hi a) + 1 && ok rest
        | _ -> true
      in
      ok (Interval_set.to_list r))

let prop_caloperate_preserves_coverage =
  QCheck2.Test.make ~name:"caloperate groups cover grouped inputs" ~count:200
    QCheck2.Gen.(pair (int_range 1 5) (int_range 1 40))
    (fun (k, n) ->
      let s = Interval_set.of_pairs (List.init n (fun i -> (i + 1, i + 1))) in
      let r = Calendar_gen.caloperate ~counts:[ k ] s in
      Interval_set.cardinal r = n / k
      && Interval_set.fold (fun acc i -> acc && Interval.length i = k) true r)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "cal_calendar"
    [
      ( "structure",
        [
          Alcotest.test_case "order/size" `Quick test_order_and_size;
          Alcotest.test_case "simplify" `Quick test_simplify;
        ] );
      ( "paper-3.1",
        [
          Alcotest.test_case "WEEKS values" `Quick test_weeks_1993_values;
          Alcotest.test_case "MONTHS values" `Quick test_months_1993_values;
          Alcotest.test_case "weeks during jan" `Quick test_weeks_during_jan;
          Alcotest.test_case "weeks during year (order 2)" `Quick test_weeks_during_year;
          Alcotest.test_case "strict overlaps" `Quick test_weeks_overlaps_jan_strict;
          Alcotest.test_case "relaxed overlaps" `Quick test_weeks_overlaps_jan_relaxed;
          Alcotest.test_case "third week of january" `Quick test_third_week_of_january;
          Alcotest.test_case "third week of every month" `Quick test_third_week_of_every_month;
          Alcotest.test_case "last day of month" `Quick test_last_day_of_month;
          Alcotest.test_case "last business day before" `Quick test_last_business_day_before;
        ] );
      ( "paper-3.2",
        [
          Alcotest.test_case "generate years 1987-92" `Quick test_generate_years_in_days_1987;
          Alcotest.test_case "misaligned rejected" `Quick test_generate_misaligned;
          Alcotest.test_case "generation limit" `Quick test_generate_too_large;
          Alcotest.test_case "caloperate weeks" `Quick test_caloperate_weeks;
          Alcotest.test_case "caloperate quarters" `Quick test_caloperate_quarters;
          Alcotest.test_case "caloperate circular" `Quick test_caloperate_circular;
          Alcotest.test_case "caloperate end time" `Quick test_caloperate_end;
        ] );
      ( "selection",
        [ Alcotest.test_case "variants" `Quick test_selection_variants ] );
      ( "elementwise",
        [ Alcotest.test_case "EMP-DAYS ops" `Quick test_elementwise_script_ops ] );
      qsuite "foreach-props"
        [
          prop_strict_subset_of_relaxed;
          prop_during_strict_eq_relaxed;
          prop_overlaps_strict_within_reference;
          prop_indexed_foreach_matches_pairwise;
        ];
      qsuite "selection-props" [ prop_select_last_is_minus_one; prop_select_size_bounded ];
      qsuite "generation-props"
        [
          prop_generate_tiles_window;
          prop_generate_intervals_disjoint_sorted;
          prop_caloperate_preserves_coverage;
        ];
    ]
