(* Property-based differential tests for the compiled query pipeline
   (Qcompile / Qplan / Exec): on random tables and queries the compiled
   engine must agree with the retained tree-walking interpreter and with
   a forced sequential scan; compiled scalar expressions must match
   Qexpr.eval; the B-tree's merged range sweep must match per-interval
   probing; and parameterization must give constant-differing queries
   one shared plan skeleton. *)

open Cal_db

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

(* ------------------------------------------------------------------ *)
(* A random world: t(k int, v float, d chronon valid, s text), indexed
   on k and d so the probe machinery is on the differential's hot path. *)

let row_gen =
  QCheck2.Gen.(
    quad (int_range (-3) 9)
      (map (fun i -> float_of_int i /. 2.) (int_range (-10) 10))
      (int_range 1 60)
      (oneofl [ "x"; "y"; "z" ]))

let rows_gen = QCheck2.Gen.(list_size (int_range 0 40) row_gen)

let build_catalog ?(index = true) rows =
  let cat = Catalog.create () in
  (match
     Exec.run_string cat "create table t (k int, v float, d chronon valid, s text)"
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  let tbl = Catalog.table cat "t" in
  List.iter
    (fun (k, v, d, s) ->
      ignore
        (Table.insert tbl [| Value.Int k; Value.Float v; Value.Chronon d; Value.Text s |]))
    rows;
  if index then begin
    Catalog.create_index cat "t" "k";
    Catalog.create_index cat "t" "d"
  end;
  cat

(* ------------------------------------------------------------------ *)
(* Random expressions. Unknown and foreign-qualified columns are
   generated on purpose: both engines must fail them identically (by
   presence — messages may differ across engines). *)

let const_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun i -> Value.Int i) (int_range (-3) 9);
        map (fun i -> Value.Float (float_of_int i /. 2.)) (int_range (-10) 10);
        map (fun c -> Value.Chronon c) (int_range 1 60);
        map (fun s -> Value.Text s) (oneofl [ "x"; "y"; "z" ]);
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
      ])

let col_gen = QCheck2.Gen.oneofl [ "k"; "v"; "d"; "s"; "t.k"; "t.d"; "nosuch" ]
let cmp_gen = QCheck2.Gen.oneofl [ Qexpr.Eq; Qexpr.Ne; Qexpr.Lt; Qexpr.Le; Qexpr.Gt; Qexpr.Ge ]
let arith_gen = QCheck2.Gen.oneofl [ Qexpr.Add; Qexpr.Sub; Qexpr.Mul; Qexpr.Div ]

(* Indexable conjuncts, generated often so access-path selection really
   runs (equality and ranges over both indexed columns, types mixed). *)
let sargable_gen =
  QCheck2.Gen.(
    map3
      (fun c op v -> Qexpr.Binop (op, Qexpr.Col c, Qexpr.Const v))
      (oneofl [ "k"; "d"; "t.k"; "t.d" ])
      (oneofl [ Qexpr.Eq; Qexpr.Lt; Qexpr.Le; Qexpr.Gt; Qexpr.Ge ])
      (oneof
         [
           map (fun i -> Value.Int i) (int_range (-3) 9);
           map (fun c -> Value.Chronon c) (int_range 1 60);
         ]))

let expr_gen =
  QCheck2.Gen.(
    sized_size (int_range 0 4)
    @@ fix (fun self n ->
           let leaf =
             oneof
               [ map (fun c -> Qexpr.Col c) col_gen; map (fun v -> Qexpr.Const v) const_gen ]
           in
           if n <= 0 then oneof [ leaf; sargable_gen ]
           else
             oneof
               [
                 leaf;
                 sargable_gen;
                 map3 (fun op a b -> Qexpr.Binop (op, a, b)) cmp_gen (self (n / 2)) (self (n / 2));
                 map3 (fun op a b -> Qexpr.Binop (op, a, b)) arith_gen (self (n / 2)) (self (n / 2));
                 map2 (fun a b -> Qexpr.Binop (Qexpr.And, a, b)) (self (n / 2)) (self (n / 2));
                 map2 (fun a b -> Qexpr.Binop (Qexpr.Or, a, b)) (self (n / 2)) (self (n / 2));
                 map (fun e -> Qexpr.Not e) (self (n - 1));
                 map (fun e -> Qexpr.Neg e) (self (n - 1));
               ]))

(* Where clauses are and-spines mixing sargable conjuncts with arbitrary
   residuals, so multi-probe intersection runs against a real filter. *)
let where_gen =
  QCheck2.Gen.(
    map
      (function
        | [] -> None
        | e :: rest ->
          Some (List.fold_left (fun acc e -> Qexpr.Binop (Qexpr.And, acc, e)) e rest))
      (list_size (int_range 0 3) (oneof [ sargable_gen; expr_gen ])))

let print_where = function Some e -> Qexpr.to_string e | None -> "<none>"

(* ------------------------------------------------------------------ *)
(* Engine-differential helpers. *)

let run_q cat ~mode ?(force_seq = false) q =
  match Exec.run cat ~stats:(Exec.fresh_stats ()) ~mode ~force_seq q with
  | r -> Ok r
  | exception Exec.Exec_error m -> Error m
  | exception Qexpr.Eval_error m -> Error m
  | exception Catalog.No_such_operator m -> Error ("no such operator: " ^ m)

let rows_equal r1 r2 =
  match (r1, r2) with
  | Exec.Rows { rows = a; columns = ca }, Exec.Rows { rows = b; columns = cb } ->
    ca = cb
    && List.length a = List.length b
    && List.for_all2
         (fun x y -> Array.length x = Array.length y && Array.for_all2 Value.equal x y)
         a b
  | Exec.Affected a, Exec.Affected b -> a = b
  | _ -> false

let contents cat =
  Table.fold (Catalog.table cat "t") (fun acc rowid tuple -> (rowid, Array.to_list tuple) :: acc) []

(* What access-path selection may and may not change. Probes are sound
   (a row satisfying the where satisfies every conjunct, so it is in
   every probe's candidates), which gives three invariants:
   - the two engines' sequential scans agree exactly, errors included;
   - when the sequential scan succeeds, every indexed run returns the
     same rows — and may not raise;
   - when the sequential scan raises, an indexed run may legitimately
     prune away the poisoned rows and succeed (with the same rows the
     scan would have kept), but a successful indexed result still has
     nothing to be compared against, so only the error direction is
     checked. Index pruning may hide errors, never invent them. *)
let seq_pair_agree a b =
  match (a, b) with
  | Ok ra, Ok rb -> rows_equal ra rb
  | Error _, Error _ -> true
  | _ -> false

let indexed_sound ~seq ix =
  match (ix, seq) with
  | Ok ri, Ok rs -> rows_equal ri rs
  | Error _, Ok _ -> false
  | (Ok _ | Error _), Error _ -> true

let retrieve_differential =
  QCheck2.Test.make ~name:"retrieve: compiled = interpreted = forced seq scan" ~count:300
    ~print:(fun (rows, w) ->
      Printf.sprintf "%d rows; where %s" (List.length rows) (print_where w))
    QCheck2.Gen.(pair rows_gen where_gen)
    (fun (rows, where) ->
      let cat = build_catalog rows in
      let q =
        Qast.Retrieve
          {
            targets = [ ("k", Qexpr.Col "k"); ("v", Qexpr.Col "v"); ("d", Qexpr.Col "d") ];
            from_ = Some "t";
            where;
            on_cal = None;
            group_by = [];
          }
      in
      let c_ix = run_q cat ~mode:`Compiled q in
      let i_ix = run_q cat ~mode:`Interpreted q in
      let c_seq = run_q cat ~mode:`Compiled ~force_seq:true q in
      let i_seq = run_q cat ~mode:`Interpreted ~force_seq:true q in
      seq_pair_agree c_seq i_seq
      && indexed_sound ~seq:c_seq c_ix
      && indexed_sound ~seq:c_seq i_ix)

(* The on-clause: the compiled single merged range sweep must select the
   same rows as the interpreter's per-interval probes and as a scan. *)
let on_cal_differential =
  QCheck2.Test.make ~name:"on-calendar: merged sweep = per-interval probes = seq scan"
    ~count:200
    ~print:(fun (rows, raw) ->
      Printf.sprintf "%d rows; cal %s" (List.length rows)
        (String.concat ","
           (List.map (fun (lo, w) -> Printf.sprintf "(%d,%d)" lo (lo + w)) raw)))
    QCheck2.Gen.(
      pair rows_gen (list_size (int_range 0 5) (pair (int_range 1 60) (int_range 0 8))))
    (fun (rows, raw) ->
      let cat = build_catalog rows in
      Catalog.set_calendar_resolver cat (fun _ ->
          Interval_set.of_pairs (List.map (fun (lo, w) -> (lo, lo + w)) raw));
      let q =
        Qast.Retrieve
          {
            targets = [ ("d", Qexpr.Col "d"); ("k", Qexpr.Col "k") ];
            from_ = Some "t";
            where = None;
            on_cal = Some "CAL";
            group_by = [];
          }
      in
      match
        ( run_q cat ~mode:`Compiled q,
          run_q cat ~mode:`Interpreted q,
          run_q cat ~mode:`Compiled ~force_seq:true q )
      with
      | Ok rc, Ok ri, Ok rcs -> rows_equal rc ri && rows_equal rc rcs
      | Error _, Error _, Error _ -> true
      | _ -> false)

(* Mutations: run the same delete/replace through both engines on two
   identically-built catalogs; the surviving heaps must coincide. *)
let mutation_differential =
  QCheck2.Test.make ~name:"delete/replace: compiled = interpreted heap contents" ~count:200
    ~print:(fun (rows, w, del) ->
      Printf.sprintf "%d rows; %s where %s" (List.length rows)
        (if del then "delete" else "replace")
        (print_where w))
    QCheck2.Gen.(triple rows_gen where_gen bool)
    (fun (rows, where, use_delete) ->
      let cat_c = build_catalog rows and cat_i = build_catalog rows in
      let q =
        if use_delete then Qast.Delete { table = "t"; where }
        else
          Qast.Replace
            {
              table = "t";
              assigns =
                [
                  ("k", Qexpr.Binop (Qexpr.Add, Qexpr.Col "k", Qexpr.Const (Value.Int 1)));
                  ("v", Qexpr.Const (Value.Float 9.5));
                ];
              where;
            }
      in
      let cat_cs = build_catalog rows and cat_is = build_catalog rows in
      let rc = run_q cat_c ~mode:`Compiled q in
      let ri = run_q cat_i ~mode:`Interpreted q in
      let rcs = run_q cat_cs ~mode:`Compiled ~force_seq:true q in
      let ris = run_q cat_is ~mode:`Interpreted ~force_seq:true q in
      (* Sequential runs are in lock-step: same rows examined in the same
         order, so results, error states and heaps (even after a partial
         replace aborted by an assign error) coincide exactly. *)
      seq_pair_agree rcs ris
      && contents cat_cs = contents cat_is
      (* Indexed runs must apply the same mutation whenever the scan
         succeeds, and may not raise where the scan did not. *)
      && indexed_sound ~seq:rcs rc
      && indexed_sound ~seq:rcs ri
      && (Result.is_error rcs
         || (contents cat_c = contents cat_cs && contents cat_i = contents cat_cs)))

(* ------------------------------------------------------------------ *)
(* Compiled scalar code vs the tree-walking evaluator, on a tuple that
   differs from anything stored (so offsets, not luck, must be right). *)

let scalar_matches_eval =
  QCheck2.Test.make ~name:"compiled scalar expression = Qexpr.eval" ~count:500
    ~print:Qexpr.to_string expr_gen (fun e ->
      let cat = build_catalog [ (1, 0.5, 3, "x") ] in
      let tbl = Catalog.table cat "t" in
      let schema = tbl.Table.schema in
      let tuple = [| Value.Int 4; Value.Float 2.5; Value.Chronon 7; Value.Text "y" |] in
      let binding name =
        match Qplan.own_column tbl name with
        | Some base ->
          Option.map (fun i -> tuple.(i)) (Schema.column_index schema base)
        | None -> None
      in
      let interpreted =
        match Qexpr.eval ~catalog:cat ~binding e with
        | v -> Ok v
        | exception Qexpr.Eval_error _ -> Error ()
        | exception Catalog.No_such_operator _ -> Error ()
      in
      let compiled =
        let env = Qcompile.make_env ~catalog:cat ~table:tbl () in
        let code = Qcompile.compile env e in
        let outer =
          Qcompile.bind_outer ~outer_cols:(Qcompile.outer_cols env) (fun _ -> None)
        in
        match code [||] outer tuple with
        | v -> Ok v
        | exception Qexpr.Eval_error _ -> Error ()
        | exception Catalog.No_such_operator _ -> Error ()
      in
      match (interpreted, compiled) with
      | Ok a, Ok b -> Value.equal a b
      | Error (), Error () -> true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Btree.range_merge vs one Btree.range per interval: identical visit
   sequence on random trees and random disjoint interval lists. *)

let range_merge_matches_range =
  QCheck2.Test.make ~name:"Btree.range_merge = per-interval Btree.range" ~count:500
    ~print:(fun (keys, raw) ->
      Printf.sprintf "keys [%s]; ivals [%s]"
        (String.concat ";" (List.map string_of_int keys))
        (String.concat ";" (List.map (fun (lo, w) -> Printf.sprintf "%d+%d" lo w) raw)))
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 60) (int_range 1 100))
        (list_size (int_range 0 6) (pair (int_range 1 100) (int_range 0 10))))
    (fun (keys, raw) ->
      let t = Btree.create () in
      List.iteri (fun i k -> Btree.insert t (Value.Int k) i) keys;
      let ivals =
        (* sorted and disjoint, as the executor hands them over *)
        let rec disj = function
          | (a1, b1) :: (a2, b2) :: rest ->
            if a2 <= b1 + 1 then disj ((a1, max b1 b2) :: rest)
            else (a1, b1) :: disj ((a2, b2) :: rest)
          | l -> l
        in
        disj (List.sort compare (List.map (fun (lo, w) -> (lo, lo + w)) raw))
      in
      let merged = ref [] in
      Btree.range_merge t
        (Array.of_list (List.map (fun (a, b) -> (Value.Int a, Value.Int b)) ivals))
        (fun k vals -> merged := (k, List.sort compare vals) :: !merged);
      let per = ref [] in
      List.iter
        (fun (a, b) ->
          Btree.range t ~lo:(Value.Int a) ~hi:(Value.Int b) (fun k vals ->
              per := (k, List.sort compare vals) :: !per))
        ivals;
      !merged = !per)

(* ------------------------------------------------------------------ *)
(* Parameterization and the plan cache. *)

let mk_eq_query c =
  Qast.Retrieve
    {
      targets = [ ("k", Qexpr.Col "k") ];
      from_ = Some "t";
      where = Some (Qexpr.Binop (Qexpr.Eq, Qexpr.Col "k", Qexpr.Const (Value.Int c)));
      on_cal = None;
      group_by = [];
    }

let parameterize_shares_skeleton =
  QCheck2.Test.make ~name:"constant-differing queries share one skeleton" ~count:200
    QCheck2.Gen.(pair (int_range (-100) 100) (int_range (-100) 100))
    (fun (c1, c2) ->
      match (Qplan.parameterize_query (mk_eq_query c1), Qplan.parameterize_query (mk_eq_query c2)) with
      | Some (s1, p1), Some (s2, p2) ->
        s1 = s2 && p1 = [| Value.Int c1 |] && p2 = [| Value.Int c2 |]
      | _ -> false)

let plan_cache_hit_on_new_constant =
  QCheck2.Test.make ~name:"second constant-differing run hits the plan cache" ~count:50
    QCheck2.Gen.(triple rows_gen (int_range (-3) 9) (int_range (-3) 9))
    (fun (rows, c1, c2) ->
      let cat = build_catalog rows in
      let s1 = Exec.fresh_stats () in
      ignore (Exec.run cat ~stats:s1 (mk_eq_query c1));
      let s2 = Exec.fresh_stats () in
      ignore (Exec.run cat ~stats:s2 (mk_eq_query c2));
      s1.Exec.plan_cache_misses = 1
      && s1.Exec.plan_cache_hits = 0
      && s2.Exec.plan_cache_misses = 0
      && s2.Exec.plan_cache_hits = 1)

let () =
  Alcotest.run "cal_plan"
    [
      qsuite "engine-differential"
        [ retrieve_differential; on_cal_differential; mutation_differential ];
      qsuite "expression-oracle" [ scalar_matches_eval ];
      qsuite "access-path" [ range_merge_matches_range ];
      qsuite "plan-cache" [ parameterize_shares_skeleton; plan_cache_hit_on_new_constant ];
    ]
