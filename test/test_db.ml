(* Tests for the extensible-database substrate: values/ADT registry,
   B-tree (model-based), schemas, tables with index maintenance, the
   query language, access-path selection and the valid-time on-clause. *)

open Cal_db

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Value and the ADT registry *)

type Value.ext += Point of int * int

let register_point () =
  Value.register_adt
    {
      Value.tag = "point";
      pp = (function Point (x, y) -> Some (Printf.sprintf "(%d,%d)" x y) | _ -> None);
      equal = (fun a b -> match (a, b) with Point (x1, y1), Point (x2, y2) -> Some (x1 = x2 && y1 = y2) | _ -> None);
      compare =
        Some
          (fun a b ->
            match (a, b) with
            | Point (x1, y1), Point (x2, y2) -> Some (Stdlib.compare (x1, y1) (x2, y2))
            | _ -> None);
    }

let test_value_basics () =
  check_str "pp int" "42" (Value.to_string (Value.Int 42));
  check_str "pp chronon" "@-4" (Value.to_string (Value.Chronon (-4)));
  check_bool "numeric eq across int/float" true (Value.compare (Value.Int 2) (Value.Float 2.0) = 0);
  check_bool "text order" true (Value.compare (Value.Text "a") (Value.Text "b") < 0);
  check_bool "array equal" true
    (Value.equal (Value.Array [| Value.Int 1 |]) (Value.Array [| Value.Int 1 |]))

let test_value_adt () =
  register_point ();
  let p1 = Value.Ext ("point", Point (1, 2)) in
  let p2 = Value.Ext ("point", Point (1, 2)) in
  let p3 = Value.Ext ("point", Point (3, 4)) in
  check_bool "adt equal" true (Value.equal p1 p2);
  check_bool "adt not equal" false (Value.equal p1 p3);
  check_bool "adt compare" true (Value.compare p1 p3 < 0);
  check_str "adt pp" "point:(1,2)" (Value.to_string p1);
  match Value.to_string (Value.Ext ("nosuch", Point (0, 0))) with
  | _ -> Alcotest.fail "expected Unknown_adt"
  | exception Value.Unknown_adt "nosuch" -> ()

(* ------------------------------------------------------------------ *)
(* B-tree: model-based *)

let test_btree_basic () =
  let t = Btree.create () in
  for i = 1 to 100 do
    Btree.insert t (Value.Int i) (i * 10)
  done;
  Btree.check_invariants t;
  check_int "cardinal" 100 (Btree.cardinal t);
  Alcotest.(check (list int)) "find" [ 420 ] (Btree.find t (Value.Int 42));
  Alcotest.(check (list int)) "find missing" [] (Btree.find t (Value.Int 1000));
  Btree.insert t (Value.Int 42) 9999;
  Alcotest.(check (list int)) "multimap" [ 9999; 420 ] (Btree.find t (Value.Int 42));
  check_int "cardinal unchanged by dup key" 100 (Btree.cardinal t);
  check_bool "remove one rowid" true (Btree.remove t (Value.Int 42) 9999);
  Alcotest.(check (list int)) "remaining" [ 420 ] (Btree.find t (Value.Int 42));
  check_bool "remove last rowid deletes key" true (Btree.remove t (Value.Int 42) 420);
  check_bool "gone" false (Btree.mem t (Value.Int 42));
  check_int "cardinal after delete" 99 (Btree.cardinal t);
  Btree.check_invariants t

let test_btree_range () =
  let t = Btree.create () in
  List.iter (fun i -> Btree.insert t (Value.Int i) i) [ 5; 1; 9; 3; 7; 2; 8 ];
  let collect ?lo ?hi () =
    let acc = ref [] in
    Btree.range t ?lo ?hi (fun k _ -> acc := k :: !acc);
    List.rev !acc
  in
  Alcotest.(check (list int)) "full range in order" [ 1; 2; 3; 5; 7; 8; 9 ]
    (List.map (function Value.Int i -> i | _ -> -1) (collect ()));
  Alcotest.(check (list int)) "bounded range" [ 3; 5; 7 ]
    (List.map
       (function Value.Int i -> i | _ -> -1)
       (collect ~lo:(Value.Int 3) ~hi:(Value.Int 7) ()))

let prop_btree_model =
  (* Random interleavings of insert/remove, checked against an assoc-list
     model plus structural invariants. *)
  QCheck2.Test.make ~name:"btree matches assoc-list model" ~count:100
    QCheck2.Gen.(list_size (int_range 0 400) (pair (int_range 0 60) bool))
    (fun ops ->
      let t = Btree.create () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, insert) ->
          let key = Value.Int k in
          if insert then begin
            let rowid = k * 1000 + List.length (Option.value ~default:[] (Hashtbl.find_opt model k)) in
            Btree.insert t key rowid;
            Hashtbl.replace model k (rowid :: Option.value ~default:[] (Hashtbl.find_opt model k))
          end
          else begin
            match Hashtbl.find_opt model k with
            | Some (rowid :: rest) ->
              ignore (Btree.remove t key rowid);
              if rest = [] then Hashtbl.remove model k else Hashtbl.replace model k rest
            | Some [] | None -> ignore (Btree.remove t key 0)
          end)
        ops;
      Btree.check_invariants t;
      Hashtbl.fold
        (fun k rowids acc ->
          acc && List.sort Int.compare (Btree.find t (Value.Int k)) = List.sort Int.compare rowids)
        model true
      && Btree.cardinal t = Hashtbl.length model)

let prop_btree_range_model =
  QCheck2.Test.make ~name:"btree range matches filtered model" ~count:100
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 200) (int_range 0 100))
        (pair (int_range 0 100) (int_range 0 100)))
    (fun (keys, (a, b)) ->
      let lo = min a b and hi = max a b in
      let t = Btree.create () in
      List.iter (fun k -> Btree.insert t (Value.Int k) k) keys;
      let got = ref [] in
      Btree.range t ~lo:(Value.Int lo) ~hi:(Value.Int hi) (fun k _ -> got := k :: !got);
      let got = List.rev_map (function Value.Int i -> i | _ -> -1) !got in
      let expected =
        List.sort_uniq Int.compare (List.filter (fun k -> k >= lo && k <= hi) keys)
      in
      List.sort Int.compare got = expected)

(* ------------------------------------------------------------------ *)
(* Schema and table *)

let stock_schema () =
  Schema.make ~table:"stock"
    [
      { Schema.name = "day"; ty = Schema.TChronon; valid_time = true };
      { Schema.name = "sym"; ty = Schema.TText; valid_time = false };
      { Schema.name = "price"; ty = Schema.TFloat; valid_time = false };
    ]

let test_schema_validation () =
  (match Schema.make ~table:"t" [ { Schema.name = "a"; ty = Schema.TInt; valid_time = true } ] with
  | _ -> Alcotest.fail "valid-time must be chronon"
  | exception Schema.Schema_error _ -> ());
  (match
     Schema.make ~table:"t"
       [
         { Schema.name = "a"; ty = Schema.TInt; valid_time = false };
         { Schema.name = "a"; ty = Schema.TInt; valid_time = false };
       ]
   with
  | _ -> Alcotest.fail "duplicate column"
  | exception Schema.Schema_error _ -> ());
  let s = stock_schema () in
  check_int "column index" 2 (Schema.column_index_exn s "price");
  check_bool "valid col" true
    (match Schema.valid_time_column s with Some c -> c.Schema.name = "day" | None -> false);
  check_bool "ty_of_string array" true (Schema.ty_of_string "float[]" = Some (Schema.TArray Schema.TFloat))

let test_table_crud_and_indexes () =
  let t = Table.create (stock_schema ()) in
  let mk day sym price = [| Value.Chronon day; Value.Text sym; Value.Float price |] in
  let r1 = Table.insert t (mk 1 "IBM" 100.) in
  let _r2 = Table.insert t (mk 2 "IBM" 101.) in
  let r3 = Table.insert t (mk 3 "DEC" 50.) in
  check_int "count" 3 (Table.count t);
  Table.create_index t "day";
  check_bool "index lookup" true (Table.index_lookup t "day" (Value.Chronon 3) = Some [ r3 ]);
  (* Index maintenance across update and delete. *)
  ignore (Table.update t r3 (mk 4 "DEC" 51.));
  check_bool "old key gone" true (Table.index_lookup t "day" (Value.Chronon 3) = Some []);
  check_bool "new key present" true (Table.index_lookup t "day" (Value.Chronon 4) = Some [ r3 ]);
  ignore (Table.delete t r1);
  check_bool "deleted key gone" true (Table.index_lookup t "day" (Value.Chronon 1) = Some []);
  check_int "count after delete" 2 (Table.count t);
  (* Type errors rejected. *)
  match Table.insert t [| Value.Int 1; Value.Text "X"; Value.Float 1. |] with
  | _ -> Alcotest.fail "expected schema error"
  | exception Schema.Schema_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Query language *)

let setup_db () =
  let cat = Catalog.create () in
  let run s =
    match Exec.run_string cat s with
    | Ok r -> r
    | Error e -> Alcotest.failf "query failed: %s (%s)" e s
  in
  ignore (run "create table stock (day chronon valid, sym text, price float)");
  for d = 1 to 31 do
    ignore
      (run
         (Printf.sprintf "append stock (day = @%d, sym = 'IBM', price = %d.5)" d (100 + d)))
  done;
  (cat, run)

let rows_of = function
  | Exec.Rows { rows; _ } -> rows
  | _ -> Alcotest.fail "expected rows"

let test_qparser_forms () =
  let ok s = check_bool s true (Result.is_ok (Qparser.query s)) in
  ok "create table t (a int, b text, c chronon valid, d float[])";
  ok "create index on t (a)";
  ok "append t (a = 1, b = 'x')";
  ok "retrieve (t.a, b) from t where a > 1 and b = 'x' or not (a = 2)";
  ok "retrieve (price) from stock on \"[2]/DAYS:during:WEEKS\"";
  ok "retrieve (1 + 2 * 3)";
  ok "delete t where a <> 3";
  ok "replace t (a = a + 1) where a >= 0";
  ok "define rule r1 on append to stock where new.price > 100 do append log (msg = 'hi')";
  ok "define rule r2 on calendar \"[2]/DAYS:during:WEEKS\" do { append log (msg = 'a'); delete log where msg = 'b' }";
  ok "drop rule r1";
  let bad s = check_bool s true (Result.is_error (Qparser.query s)) in
  bad "retrieve price from stock";
  bad "append stock";
  bad "create table t (a nosuchkeyword[[)";
  bad "retrieve (a) from t where"

let test_exec_basic_crud () =
  let _, run = setup_db () in
  (match run "retrieve (count(price)) from stock" with
  | Exec.Rows { rows = [ [| Value.Int 31 |] ]; _ } -> ()
  | r -> Alcotest.failf "unexpected %s" (match r with Exec.Rows _ -> "rows" | _ -> "other"));
  let r = run "retrieve (price) from stock where day = @5" in
  (match rows_of r with
  | [ [| Value.Float p |] ] -> check_bool "price" true (abs_float (p -. 105.5) < 1e-9)
  | _ -> Alcotest.fail "expected one row");
  ignore (run "replace stock (price = price + 1.0) where day = @5");
  (match rows_of (run "retrieve (price) from stock where day = @5") with
  | [ [| Value.Float p |] ] -> check_bool "updated" true (abs_float (p -. 106.5) < 1e-9)
  | _ -> Alcotest.fail "expected one row");
  (match run "delete stock where day < @6" with
  | Exec.Affected 5 -> ()
  | _ -> Alcotest.fail "expected 5 deletions");
  match run "retrieve (count(price)) from stock" with
  | Exec.Rows { rows = [ [| Value.Int 26 |] ]; _ } -> ()
  | _ -> Alcotest.fail "expected 26"

let test_exec_expressions_and_operators () =
  let cat, run = setup_db () in
  Catalog.register_operator cat ~name:"double" ~arity:1 (function
    | [ Value.Float f ] -> Value.Float (2. *. f)
    | [ Value.Int i ] -> Value.Int (2 * i)
    | _ -> Value.Null);
  (match rows_of (run "retrieve (double(21))") with
  | [ [| Value.Int 42 |] ] -> ()
  | _ -> Alcotest.fail "registered operator");
  (* Chronon arithmetic in expressions. *)
  (match rows_of (run "retrieve (@-1 + 2)") with
  | [ [| Value.Chronon 2 |] ] -> () (* -1 + 2 skips zero *)
  | r ->
    Alcotest.failf "chronon arith: %s"
      (String.concat "," (List.map (fun row -> Value.to_string row.(0)) r)));
  match rows_of (run "retrieve (@5 - @1)") with
  | [ [| Value.Int 4 |] ] -> ()
  | _ -> Alcotest.fail "chronon difference"

let test_exec_index_selection () =
  let cat, run = setup_db () in
  ignore (run "create index on stock (day)");
  let stats = Exec.fresh_stats () in
  (match
     Exec.run_string cat ~stats "retrieve (price) from stock where day = @7"
   with
  | Ok (Exec.Rows { rows = [ _ ]; _ }) -> ()
  | _ -> Alcotest.fail "expected one row");
  check_int "index scan used" 1 stats.Exec.index_scans;
  check_int "no seq scan" 0 stats.Exec.seq_scans;
  check_bool "touched few tuples" true (stats.Exec.scanned <= 2);
  (* Unindexed predicate falls back to a sequential scan. *)
  let stats2 = Exec.fresh_stats () in
  (match Exec.run_string cat ~stats:stats2 "retrieve (price) from stock where sym = 'IBM'" with
  | Ok (Exec.Rows { rows; _ }) -> check_int "all rows" 31 (List.length rows)
  | _ -> Alcotest.fail "expected rows");
  check_int "seq scan used" 1 stats2.Exec.seq_scans;
  check_int "scanned everything" 31 stats2.Exec.scanned

let test_exec_on_clause () =
  let cat, run = setup_db () in
  (* Install a resolver that interprets the only expression we use as
     Tuesdays within January: days 5,12,19,26. *)
  Catalog.set_calendar_resolver cat (fun src ->
      if String.equal src "[2]/DAYS:during:WEEKS" then
        Interval_set.of_pairs [ (5, 5); (12, 12); (19, 19); (26, 26) ]
      else Interval_set.empty);
  let r = run "retrieve (day, price) from stock on \"[2]/DAYS:during:WEEKS\"" in
  let days =
    List.map (fun row -> match row.(0) with Value.Chronon c -> c | _ -> -1) (rows_of r)
  in
  Alcotest.(check (list int)) "tuesday rows" [ 5; 12; 19; 26 ] (List.sort Int.compare days);
  (* With an index on the valid column, the probe is index-backed. *)
  ignore (run "create index on stock (day)");
  let stats = Exec.fresh_stats () in
  (match
     Exec.run_string cat ~stats "retrieve (day) from stock on \"[2]/DAYS:during:WEEKS\""
   with
  | Ok (Exec.Rows { rows; _ }) -> check_int "four rows" 4 (List.length rows)
  | _ -> Alcotest.fail "expected rows");
  check_int "index-backed" 1 stats.Exec.index_scans;
  check_bool "touched only matches" true (stats.Exec.scanned <= 4);
  (* No valid-time column -> error. *)
  ignore (run "create table plain (a int)");
  match Exec.run_string cat "retrieve (a) from plain on \"X\"" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error for missing valid-time column"

(* Conjunct flattening feeds access-path selection: every sargable
   conjunct must surface no matter how the parser nested the [and]s. *)
let test_conjuncts_flatten () =
  let open Qexpr in
  let a = Col "a" and b = Col "b" and c = Col "c" and d = Col "d" in
  let ( &&& ) x y = Binop (And, x, y) in
  let eq = Alcotest.(check (list string)) in
  let strs e = List.map to_string (conjuncts e) in
  eq "balanced nesting" [ "a"; "b"; "c"; "d" ] (strs ((a &&& b) &&& (c &&& d)));
  eq "right-nested" [ "a"; "b"; "c"; "d" ] (strs (a &&& (b &&& (c &&& d))));
  eq "left-nested" [ "a"; "b"; "c"; "d" ] (strs (((a &&& b) &&& c) &&& d));
  eq "single expression" [ "a" ] (strs a);
  eq "or is opaque" [ "(a or b)" ] (strs (Binop (Or, a, b)));
  eq "or under and" [ "(a or b)"; "c" ] (strs (Binop (Or, a, b) &&& c))

(* Regression: with two indexed columns the planner (and the upgraded
   interpreter) must probe the more selective one, not the first conjunct
   in writing order. *)
let test_exec_selectivity () =
  let cat = Catalog.create () in
  let run s =
    match Exec.run_string cat s with
    | Ok r -> r
    | Error e -> Alcotest.failf "query failed: %s (%s)" e s
  in
  ignore (run "create table wide (a int, b int)");
  for i = 0 to 499 do
    ignore (run (Printf.sprintf "append wide (a = %d, b = %d)" (i mod 2) i))
  done;
  ignore (run "create index on wide (a)");
  ignore (run "create index on wide (b)");
  (* a = 1 matches 250 rows, b = 123 exactly one; a comes first in the
     where clause. *)
  let probe ~mode q =
    let stats = Exec.fresh_stats () in
    (match Exec.run_string cat ~stats ~mode q with
    | Ok (Exec.Rows { rows = [ [| Value.Int 123 |] ]; _ }) -> ()
    | Ok _ -> Alcotest.fail "expected exactly the row b = 123"
    | Error e -> Alcotest.failf "query failed: %s" e);
    stats
  in
  let s = probe ~mode:`Compiled "retrieve (b) from wide where a = 1 and b = 123" in
  check_int "compiled: index scan" 1 s.Exec.index_scans;
  check_bool "compiled: probed the selective index" true (s.Exec.scanned <= 2);
  let s = probe ~mode:`Interpreted "retrieve (b) from wide where a = 1 and b = 123" in
  check_bool "interpreted: picked the selective index" true (s.Exec.scanned <= 2);
  (* A wide range conjunct on [a] must not beat the equality on [b]. *)
  let s = probe ~mode:`Compiled "retrieve (b) from wide where a >= 0 and b = 123" in
  check_bool "range conjunct does not drag in the table" true (s.Exec.scanned <= 2)

(* The plan cache: constants are parameterized away, so re-running the
   same shape with a different constant is a hit; DDL invalidates. *)
let test_plan_cache () =
  let cat, run = setup_db () in
  let q d = Printf.sprintf "retrieve (price) from stock where day = @%d" d in
  let run_q stats d =
    match Exec.run_string cat ~stats (q d) with
    | Ok (Exec.Rows { rows = [ [| Value.Float _ |] ]; _ }) -> ()
    | _ -> Alcotest.failf "expected one row for day %d" d
  in
  let stats = Exec.fresh_stats () in
  run_q stats 5;
  check_int "first run misses" 1 stats.Exec.plan_cache_misses;
  run_q stats 9;
  run_q stats 23;
  check_int "same skeleton, new constants: hits" 2 stats.Exec.plan_cache_hits;
  check_int "still a single build" 1 stats.Exec.plan_cache_misses;
  (* DDL bumps the catalog version: the cached plan is stale, and the
     rebuilt one sees the new index. *)
  ignore (run "create index on stock (day)");
  let stats2 = Exec.fresh_stats () in
  run_q stats2 7;
  check_int "post-DDL rebuild" 1 stats2.Exec.plan_cache_misses;
  check_int "rebuilt plan uses the new index" 1 stats2.Exec.index_scans;
  let cs = Qplan.cache_stats cat in
  check_bool "invalidation recorded" true (cs.Qplan.invalidations >= 1);
  check_bool "cache is populated" true (cs.Qplan.size >= 1);
  (* Interpreted mode never touches the plan cache. *)
  let stats3 = Exec.fresh_stats () in
  (match Exec.run_string cat ~stats:stats3 ~mode:`Interpreted (q 5) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "query failed: %s" e);
  check_int "interpreted: no cache traffic" 0
    (stats3.Exec.plan_cache_hits + stats3.Exec.plan_cache_misses)

let test_exec_hooks () =
  let cat, run = setup_db () in
  let events = ref [] in
  Catalog.add_hook cat (fun ev -> events := ev.Catalog.kind :: !events);
  ignore (run "append stock (day = @40, sym = 'HP', price = 10.0)");
  ignore (run "delete stock where day = @40");
  check_bool "append then delete fired" true
    (match !events with Catalog.On_delete :: Catalog.On_append :: _ -> true | _ -> false)

let test_exec_rule_passthrough () =
  let _, run = setup_db () in
  match run "define rule r1 on append to stock do append stock (day = @1, sym = 'x', price = 0.0)" with
  | Exec.Rule_def r ->
    check_str "rule name" "r1" r.Qast.rule_name;
    check_bool "db event" true
      (match r.Qast.event with Qast.Ev_db (Catalog.On_append, "stock") -> true | _ -> false)
  | _ -> Alcotest.fail "expected rule definition"

let test_exec_group_by () =
  let _, run = setup_db () in
  ignore (run "create table sales (sym text, qty int, price float)");
  List.iter
    (fun (sym, qty, price) ->
      ignore
        (run (Printf.sprintf "append sales (sym = '%s', qty = %d, price = %.1f)" sym qty price)))
    [ ("IBM", 10, 100.); ("DEC", 5, 50.); ("IBM", 20, 110.); ("DEC", 15, 60.); ("HP", 1, 10.) ];
  (match run "retrieve (sym, total = sum(qty), mean = avg(price)) from sales group by sym" with
  | Exec.Rows { columns; rows } ->
    Alcotest.(check (list string)) "columns" [ "sym"; "total"; "mean" ] columns;
    check_int "three groups" 3 (List.length rows);
    let find s =
      List.find (fun r -> r.(0) = Value.Text s) rows
    in
    check_bool "ibm total" true ((find "IBM").(1) = Value.Float 30.);
    check_bool "dec mean" true ((find "DEC").(2) = Value.Float 55.);
    check_bool "hp count" true ((find "HP").(1) = Value.Float 1.)
  | _ -> Alcotest.fail "expected rows");
  (* Grouped + filtered. *)
  (match run "retrieve (sym, n = count(qty)) from sales where qty >= 10 group by sym" with
  | Exec.Rows { rows; _ } -> check_int "two groups after filter" 2 (List.length rows)
  | _ -> Alcotest.fail "expected rows");
  (* A non-aggregate, non-grouped target is rejected. *)
  (match Exec.run_string (fst (setup_db ())) "retrieve (price, sym) from stock group by sym" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error")

let test_exec_errors () =
  let cat, _ = setup_db () in
  let err s = check_bool s true (Result.is_error (Exec.run_string cat s)) in
  err "retrieve (nope) from stock";
  err "retrieve (price) from nosuch";
  err "append stock (day = 'not a chronon', sym = 'x', price = 1.0)";
  err "retrieve (price / 0.0) from stock where day = @1 and price / 0 > 1";
  err "create table stock (a int)" (* duplicate *)

(* Dump literals round-trip through the parser for values in the ranges a
   database realistically stores. *)
let prop_dump_value_roundtrip =
  let value_gen =
    let open QCheck2.Gen in
    oneof
      [
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) (int_range (-1_000_000) 1_000_000);
        map (fun f -> Value.Float f) (float_range (-1e9) 1e9);
        map (fun s -> Value.Text s)
          (string_size ~gen:(oneofl [ 'a'; 'z'; '\''; '"'; '\\'; '\n'; '\t'; ' ' ]) (int_range 0 12));
        map (fun c -> Value.Chronon (Chronon.of_offset c)) (int_range (-5000) 5000);
        map2
          (fun a b ->
            Value.Interval (Interval.make (Chronon.of_offset (min a b)) (Chronon.of_offset (max a b))))
          (int_range (-500) 500) (int_range (-500) 500);
      ]
  in
  QCheck2.Test.make ~name:"dump literal parses back to the same value" ~count:400
    QCheck2.Gen.(oneof [ value_gen; map (fun l -> Value.Array (Array.of_list l)) (list_size (int_range 0 4) value_gen) ])
    (fun v ->
      let catalog = Catalog.create () in
      let lit = Dump.literal v in
      match Qparser.expr_exn lit with
      | e -> (
        match Qexpr.eval ~catalog ~binding:(fun _ -> None) e with
        | v' -> Value.equal v v' || (v = Value.Null && v' = Value.Null)
        | exception _ -> false)
      | exception _ -> false)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "cal_db"
    [
      ( "value",
        [
          Alcotest.test_case "basics" `Quick test_value_basics;
          Alcotest.test_case "adt registry" `Quick test_value_adt;
        ] );
      ( "btree",
        [
          Alcotest.test_case "basic" `Quick test_btree_basic;
          Alcotest.test_case "range" `Quick test_btree_range;
        ] );
      ( "schema/table",
        [
          Alcotest.test_case "schema validation" `Quick test_schema_validation;
          Alcotest.test_case "crud + index maintenance" `Quick test_table_crud_and_indexes;
        ] );
      ("qparser", [ Alcotest.test_case "forms" `Quick test_qparser_forms ]);
      ( "exec",
        [
          Alcotest.test_case "basic crud" `Quick test_exec_basic_crud;
          Alcotest.test_case "expressions + operators" `Quick test_exec_expressions_and_operators;
          Alcotest.test_case "index selection" `Quick test_exec_index_selection;
          Alcotest.test_case "conjunct flattening" `Quick test_conjuncts_flatten;
          Alcotest.test_case "selectivity ranking" `Quick test_exec_selectivity;
          Alcotest.test_case "plan cache" `Quick test_plan_cache;
          Alcotest.test_case "valid-time on-clause" `Quick test_exec_on_clause;
          Alcotest.test_case "group by" `Quick test_exec_group_by;
          Alcotest.test_case "event hooks" `Quick test_exec_hooks;
          Alcotest.test_case "rule passthrough" `Quick test_exec_rule_passthrough;
          Alcotest.test_case "errors" `Quick test_exec_errors;
        ] );
      qsuite "btree-props" [ prop_btree_model; prop_btree_range_model ];
      qsuite "dump-props" [ prop_dump_value_roundtrip ];
    ]
