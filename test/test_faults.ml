(* Durability and fault injection: the seeded injector itself, the
   checksummed journal, isolated rule firing (retry / backoff /
   quarantine), catch-up policies, and the crash-consistency property —
   recovering a session that crashed mid-journal-append must be
   bit-identical to an oracle that ran only the surviving operations. *)

open Calrules
module Injector = Cal_faults.Injector
module Journal = Cal_db.Journal

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)
let epoch93 = Civil.make 1993 1 1
let lifespan93 = (Civil.make 1993 1 1, Civil.make 1999 12 31)
let day_instant d = (d - 1) * 86400

let session ?max_failures ?retry_base ?injector () =
  Session.create ~epoch:epoch93 ~lifespan:lifespan93 ?max_failures ?retry_base
    ?injector ()

let run s q =
  match Session.query s q with
  | Ok r -> r
  | Error e -> Alcotest.failf "query %S: %s" q e

let rows s q =
  match run s q with
  | Cal_db.Exec.Rows { rows; _ } -> rows
  | _ -> Alcotest.failf "expected rows from %S" q

let count s q = List.length (rows s q)

(* A scratch journal path; both the journal and its snapshot are
   removed afterwards. *)
let with_journal_path f =
  let path = Filename.temp_file "calq_faults" ".journal" in
  let cleanup () =
    let seg_files =
      List.concat_map
        (fun k ->
          let s = path ^ ".seg" ^ string_of_int k in
          [ s; s ^ ".tmp" ])
        (List.init 8 Fun.id)
    in
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      ([ path; path ^ ".snap"; path ^ ".tmp"; path ^ ".snap.tmp";
         path ^ ".manifest"; path ^ ".manifest.tmp" ]
      @ seg_files)
  in
  Fun.protect ~finally:cleanup (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* Injector *)

let test_injector_determinism () =
  let decisions seed =
    let inj = Injector.create ~seed () in
    Injector.set_action_fault inj ~rate:0.5 ();
    List.init 200 (fun _ -> Injector.action_fault inj ~rule:"r" <> None)
  in
  check_bool "same seed, same decisions" true (decisions 7 = decisions 7);
  check_bool "decision stream is non-trivial" true
    (List.exists Fun.id (decisions 7) && not (List.for_all Fun.id (decisions 7)))

let test_injector_budgets () =
  let inj = Injector.create ~seed:1 () in
  Injector.set_action_fault inj ~rule:"tick" ~times:2 ();
  check_bool "other rules untouched" true (Injector.action_fault inj ~rule:"other" = None);
  check_bool "first" true (Injector.action_fault inj ~rule:"tick" <> None);
  check_bool "second" true (Injector.action_fault inj ~rule:"TICK" <> None);
  check_bool "budget spent" true (Injector.action_fault inj ~rule:"tick" = None);
  Injector.set_exec_fault inj ~times:1 ();
  check_bool "one exec fault" true (Injector.exec_fault inj <> None);
  check_bool "exec budget spent" true (Injector.exec_fault inj = None);
  let actions, execs, crashes = Injector.stats inj in
  check_int "action faults counted" 2 actions;
  check_int "exec faults counted" 1 execs;
  check_int "no crashes" 0 crashes

let test_injector_disabled () =
  check_bool "none is disabled" false (Injector.enabled Injector.none);
  check_bool "none never fails actions" true
    (Injector.action_fault Injector.none ~rule:"r" = None);
  check_bool "none never fails execs" true (Injector.exec_fault Injector.none = None);
  check_bool "none never crashes" true
    (Injector.on_journal_append Injector.none "x" = `Write);
  check_int "none never jumps" 42 (Injector.jump_clock Injector.none 42)

let test_injector_clock_jump () =
  let inj = Injector.create ~seed:3 () in
  check_int "identity before arming" 10 (Injector.jump_clock inj 10);
  Injector.set_clock_jump inj (fun i -> i + 100);
  check_int "rewritten" 110 (Injector.jump_clock inj 10)

(* ------------------------------------------------------------------ *)
(* Journal *)

let test_journal_roundtrip () =
  with_journal_path @@ fun path ->
  let j = Journal.open_append path in
  let payloads = [ "hello"; "multi\nline\rrecord"; "back\\slash \\n"; "" ] in
  List.iter (Journal.append j) payloads;
  check_int "appended" 4 (Journal.appended j);
  Journal.close j;
  check_bool "roundtrip" true (Journal.read_records path = payloads);
  let j = Journal.open_append path in
  Journal.append j "fifth";
  Journal.close j;
  check_bool "reopen appends" true (Journal.read_records path = payloads @ [ "fifth" ])

let test_journal_torn_tail_dropped () =
  with_journal_path @@ fun path ->
  Journal.rewrite path [ "a"; "b" ];
  (* A crash mid-append leaves a final line without its newline. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "deadbeef torn-rec";
  close_out oc;
  check_bool "torn tail dropped" true (Journal.read_records path = [ "a"; "b" ]);
  (* A complete final line whose checksum disagrees is also a torn tail. *)
  Journal.rewrite path [ "a"; "b" ];
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "00000000 bad-crc\n";
  close_out oc;
  check_bool "bad-crc tail dropped" true (Journal.read_records path = [ "a"; "b" ])

let test_journal_corrupt_middle_raises () =
  with_journal_path @@ fun path ->
  Journal.rewrite path [ "aaaa"; "bbbb"; "cccc" ];
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (* Flip a payload byte of the middle record: its checksum now
     disagrees, but intact records follow — that is damage, not a torn
     write. *)
  let lines = String.split_on_char '\n' text in
  let corrupted =
    List.mapi
      (fun i line ->
        if i = 1 then (
          let b = Bytes.of_string line in
          Bytes.set b (Bytes.length b - 1) 'X';
          Bytes.to_string b)
        else line)
      lines
  in
  let oc = open_out_bin path in
  output_string oc (String.concat "\n" corrupted);
  close_out oc;
  (match Journal.read_records path with
  | exception Journal.Journal_error _ -> ()
  | _ -> Alcotest.fail "corrupt middle record must raise")

let test_journal_truncate_and_rewrite () =
  with_journal_path @@ fun path ->
  let j = Journal.open_append path in
  List.iter (Journal.append j) [ "one"; "two"; "three" ];
  Journal.truncate j;
  check_bool "truncated" true (Journal.read_records path = []);
  Journal.append j "after";
  check_bool "append after truncate" true (Journal.read_records path = [ "after" ]);
  Journal.close j;
  Journal.rewrite path [ "x"; "y" ];
  check_bool "rewrite replaces" true (Journal.read_records path = [ "x"; "y" ])

let test_journal_injected_torn_write () =
  with_journal_path @@ fun path ->
  let inj = Injector.create ~seed:11 () in
  Injector.set_crash_at_append inj ~torn:5 2;
  let j = Journal.open_append ~injector:inj path in
  Journal.append j "survivor";
  (match Journal.append j "victim" with
  | () -> Alcotest.fail "second append must crash"
  | exception Injector.Crash _ -> ());
  check_int "both appends counted" 2 (Journal.appended j);
  check_bool "torn record discarded" true (Journal.read_records path = [ "survivor" ]);
  let _, _, crashes = Injector.stats inj in
  check_int "crash counted" 1 crashes

let test_journal_segmented_roundtrip () =
  with_journal_path @@ fun path ->
  let j = Journal.open_append ~segments:3 path in
  check_int "handle stripes over 3" 3 (Journal.segments j);
  let payloads =
    [ "alpha"; "multi\nline"; ""; "back\\slash"; "echo"; "foxtrot"; "golf" ]
  in
  List.iter (Journal.append j) payloads;
  Journal.close j;
  check_int "manifest records layout" 3 (Journal.detect_segments path);
  check_bool "segment files exist" true
    (Sys.file_exists (path ^ ".seg0")
    && Sys.file_exists (path ^ ".seg1")
    && Sys.file_exists (path ^ ".seg2"));
  check_bool "merged in append order" true (Journal.read_records path = payloads);
  check_bool "parallel decode agrees" true
    (Journal.read_records ~domains:4 path = payloads);
  (* Reopening continues the global sequence across the stripes. *)
  let j = Journal.open_append ~segments:3 path in
  Journal.append j "hotel";
  Journal.close j;
  check_bool "reopen appends in order" true
    (Journal.read_records path = payloads @ [ "hotel" ]);
  (* Opening a segmented journal as single-file is refused, not mangled. *)
  (match Journal.open_append path with
  | _ -> Alcotest.fail "single-file open of a segmented journal must raise"
  | exception Journal.Journal_error _ -> ())

let test_journal_segmented_torn_tail () =
  with_journal_path @@ fun path ->
  let inj = Injector.create ~seed:12 () in
  Injector.set_crash_at_append inj ~torn:5 4;
  let j = Journal.open_append ~injector:inj ~segments:2 path in
  List.iter (Journal.append j) [ "s0"; "s1"; "s2" ];
  (match Journal.append j "victim" with
  | () -> Alcotest.fail "fourth append must crash"
  | exception Injector.Crash _ -> ());
  (* The torn record was the globally last one (sequence 3, segment 1);
     the merged prefix is intact and contiguous. *)
  check_bool "torn segment tail dropped on merge" true
    (Journal.read_records path = [ "s0"; "s1"; "s2" ])

let test_journal_segmented_gap_raises () =
  with_journal_path @@ fun path ->
  Journal.rewrite ~segments:2 path [ "r0"; "r1"; "r2"; "r3" ];
  (* Truncate segment 0 (sequences 0 and 2) to its first record: the
     merge now sees 0,1,3 — a gap that no single torn tail explains. *)
  let seg0 = path ^ ".seg0" in
  let ic = open_in_bin seg0 in
  let first_line = input_line ic in
  close_in ic;
  let oc = open_out_bin seg0 in
  output_string oc (first_line ^ "\n");
  close_out oc;
  (match Journal.read_records path with
  | exception Journal.Journal_error _ -> ()
  | _ -> Alcotest.fail "sequence gap must raise")

(* ------------------------------------------------------------------ *)
(* Group commit *)

(* The byte-compat pin: under Sync_each the on-disk format is exactly
   the pre-group-commit format, down to the checksum. *)
let test_sync_each_bytes_golden () =
  with_journal_path @@ fun path ->
  let j = Journal.open_append path in
  Journal.append j "hello";
  Journal.close j;
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "legacy record bytes" "3610a686 hello\n" text

let test_group_policy_buffers_and_autocommits () =
  with_journal_path @@ fun path ->
  let j = Journal.open_append ~policy:(Journal.Group 3) path in
  Journal.append j "a";
  Journal.append j "b";
  check_int "nothing flushed yet" 0 (Journal.flushes j);
  check_int "two pending" 2 (Journal.pending j);
  check_bool "nothing on disk yet" true (Journal.read_records path = []);
  Journal.append j "c";
  check_int "window filled, one flush" 1 (Journal.flushes j);
  check_int "buffer drained" 0 (Journal.pending j);
  check_bool "whole group durable" true (Journal.read_records path = [ "a"; "b"; "c" ]);
  check_bool "as one physical record" true (Journal.read_groups path = [ [ "a"; "b"; "c" ] ]);
  Journal.append j "d";
  Journal.close j (* commits the pending tail *);
  check_bool "close commits the tail" true
    (Journal.read_records path = [ "a"; "b"; "c"; "d" ]);
  check_bool "singleton groups are plain records" true
    (Journal.read_groups path = [ [ "a"; "b"; "c" ]; [ "d" ] ])

let test_manual_policy_commit_and_truncate () =
  with_journal_path @@ fun path ->
  let j = Journal.open_append ~policy:Journal.Manual path in
  List.iter (Journal.append j) [ "x"; "y" ];
  check_bool "nothing durable before commit" true (Journal.read_records path = []);
  Journal.commit j;
  check_bool "commit flushes the group" true (Journal.read_groups path = [ [ "x"; "y" ] ]);
  Journal.commit j;
  check_int "empty commit is not a flush" 1 (Journal.flushes j);
  Journal.append j "z";
  Journal.truncate j (* after a snapshot: the buffer is subsumed, not flushed *);
  check_int "pending discarded" 0 (Journal.pending j);
  check_bool "truncated clean" true (Journal.read_records path = []);
  Journal.close j

let test_append_batch_atomic_group () =
  with_journal_path @@ fun path ->
  let j = Journal.open_append path (* Sync_each *) in
  Journal.append_batch j [ "a"; "b\nc"; "" ];
  Journal.append j "solo";
  Journal.close j;
  check_bool "batch framed as one group even under Sync_each" true
    (Journal.read_groups path = [ [ "a"; "b\nc"; "" ]; [ "solo" ] ]);
  check_bool "flattened in order" true
    (Journal.read_records path = [ "a"; "b\nc"; ""; "solo" ])

let test_reserved_byte_rejected () =
  with_journal_path @@ fun path ->
  let j = Journal.open_append path in
  (match Journal.append j "\x01nope" with
  | () -> Alcotest.fail "reserved group-frame byte must be rejected"
  | exception Journal.Journal_error _ -> ());
  Journal.close j;
  match Journal.rewrite path [ "\x01nope" ] with
  | () -> Alcotest.fail "rewrite must reject the reserved byte"
  | exception Journal.Journal_error _ -> ()

let test_append_batch_segmented () =
  with_journal_path @@ fun path ->
  let j = Journal.open_append ~segments:3 path in
  Journal.append j "pre";
  Journal.append_batch j [ "g0"; "g1"; "g2"; "g3" ];
  Journal.append j "post";
  Journal.close j;
  (* The whole batch occupies one sequence slot in one segment, so group
     atomicity is layout-independent. *)
  check_bool "group framing survives striping" true
    (Journal.read_groups path = [ [ "pre" ]; [ "g0"; "g1"; "g2"; "g3" ]; [ "post" ] ]);
  check_bool "merge flattens in append order" true
    (Journal.read_records path = [ "pre"; "g0"; "g1"; "g2"; "g3"; "post" ]);
  check_bool "parallel decode agrees" true
    (Journal.read_records ~domains:4 path = [ "pre"; "g0"; "g1"; "g2"; "g3"; "post" ])

let test_rewrite_groups_preserves_framing () =
  List.iter
    (fun segments ->
      with_journal_path @@ fun path ->
      Journal.rewrite_groups ~segments path [ [ "a" ]; [ "b"; "c" ]; [ "d" ] ];
      check_bool "framing preserved" true
        (Journal.read_groups path = [ [ "a" ]; [ "b"; "c" ]; [ "d" ] ]);
      check_bool "flatten agrees" true (Journal.read_records path = [ "a"; "b"; "c"; "d" ]))
    [ 1; 3 ]

(* A crash tearing bytes inside a group's physical write drops the whole
   group on recovery — never a partial group — on both layouts. *)
let test_torn_group_flush_drops_whole_group () =
  List.iter
    (fun segments ->
      with_journal_path @@ fun path ->
      let inj = Injector.create ~seed:31 () in
      Injector.set_crash_at_flush inj ~torn:7 2;
      let j = Journal.open_append ~policy:(Journal.Group 3) ~injector:inj ~segments path in
      List.iter (Journal.append j) [ "a"; "b"; "c" ] (* flush 1 survives *);
      (match Journal.append_batch j [ "d"; "e"; "f" ] with
      | () -> Alcotest.fail "second group flush must crash"
      | exception Injector.Crash _ -> ());
      check_bool
        (Printf.sprintf "torn group dropped whole (%d segments)" segments)
        true
        (Journal.read_records path = [ "a"; "b"; "c" ]))
    [ 1; 2 ]

(* A crash between flushes loses the uncommitted buffer entirely:
   committed groups stay, nothing partial reaches the file. *)
let test_crash_between_flushes_loses_buffer_whole () =
  with_journal_path @@ fun path ->
  let inj = Injector.create ~seed:32 () in
  Injector.set_crash_at_append inj 5;
  let j = Journal.open_append ~policy:(Journal.Group 3) ~injector:inj path in
  List.iter (Journal.append j) [ "a"; "b"; "c" ] (* auto-committed group *);
  Journal.append j "d" (* buffered *);
  (match Journal.append j "e" with
  | () -> Alcotest.fail "fifth append must crash"
  | exception Injector.Crash _ -> ());
  check_int "all five appends counted" 5 (Journal.appended j);
  check_bool "committed group intact, buffer lost whole" true
    (Journal.read_records path = [ "a"; "b"; "c" ])

(* ------------------------------------------------------------------ *)
(* Isolated firing: retry, backoff, quarantine *)

let weekly = "[2]/DAYS:during:WEEKS" (* Tuesdays; first is day 5 *)

let test_failing_rule_does_not_abort_batch () =
  let s = session () in
  ignore (run s "create table log (n int)");
  ignore (run s (Printf.sprintf "define rule good on calendar \"%s\" do append log (n = 1)" weekly));
  ignore (run s (Printf.sprintf "define rule bad on calendar \"%s\" do append nosuch (n = 0)" weekly));
  Session.advance_days s 6;
  check_int "good rule fired" 1 (count s "retrieve (log.n) from log");
  check_bool "good firing logged" true
    (List.exists
       (fun f -> f.Cal_rules.Manager.rule = "good" && f.at = day_instant 5)
       (Session.firings s));
  check_bool "bad firing not logged" true
    (not (List.exists (fun f -> f.Cal_rules.Manager.rule = "bad") (Session.firings s)));
  check_bool "failure recorded" true
    (List.exists (fun (r, _, _, _) -> r = "bad") (Session.rule_errors s))

let test_retry_backoff_then_quarantine () =
  let s = session () (* max_failures 3, retry_base 60 *) in
  ignore (run s (Printf.sprintf "define rule bad on calendar \"%s\" do append nosuch (n = 0)" weekly));
  Session.advance_days s 6;
  let attempts = List.map (fun (_, at, n, _) -> (n, at)) (Session.rule_errors s) in
  (* Exponential backoff in simulated time: t, t+60, t+60+120. *)
  let t = day_instant 5 in
  check_bool "three attempts with doubling backoff" true
    (attempts = [ (1, t); (2, t + 60); (3, t + 180) ]);
  check_bool "quarantined" true (Session.quarantined_rules s = [ "bad" ]);
  (match Session.rule_health s "bad" with
  | Some (fired, failures, quarantined) ->
    check_int "no firings" 0 fired;
    check_int "consecutive failures" 3 failures;
    check_bool "flagged" true quarantined
  | None -> Alcotest.fail "rule health missing");
  check_bool "no pending fire while quarantined" true
    (Cal_rules.Manager.next_fire s.Session.manager "bad" = None);
  (* Quarantine is inert: more time passes, nothing new is attempted. *)
  Session.advance_days s 7;
  check_int "no further attempts" 3 (List.length (Session.rule_errors s));
  (* Requeue lifts it back into service and reschedules. *)
  check_bool "requeue" true (Session.requeue s "bad");
  check_bool "requeue is idempotent-no" false (Session.requeue s "bad");
  (match Session.rule_health s "bad" with
  | Some (_, failures, quarantined) ->
    check_int "failures reset" 0 failures;
    check_bool "unquarantined" false quarantined
  | None -> Alcotest.fail "rule health missing");
  check_bool "rescheduled" true
    (Cal_rules.Manager.next_fire s.Session.manager "bad" <> None)

let test_event_rule_isolation_and_quarantine () =
  let s = session () in
  ignore (run s "create table t (n int)");
  ignore (run s "define rule ev on append to t do append nosuch (n = 1)");
  for i = 1 to 3 do
    ignore (run s (Printf.sprintf "append t (n = %d)" i));
    check_int "triggering statement unaffected" i (count s "retrieve (t.n) from t")
  done;
  check_int "three failures recorded" 3 (List.length (Session.rule_errors s));
  check_bool "quarantined after max failures" true
    (Session.quarantined_rules s = [ "ev" ]);
  (* Quarantined event rules no longer run at all. *)
  ignore (run s "append t (n = 4)");
  check_int "no attempt while quarantined" 3 (List.length (Session.rule_errors s));
  check_bool "requeue" true (Session.requeue s "ev");
  ignore (run s "append t (n = 5)");
  check_int "attempts resume after requeue" 4 (List.length (Session.rule_errors s))

let test_injected_action_fault_then_recovery () =
  let inj = Injector.create ~seed:5 () in
  Injector.set_action_fault inj ~rule:"tick" ~times:1 ();
  let s = session ~injector:inj () in
  ignore (run s "create table log (n int)");
  ignore (run s (Printf.sprintf "define rule tick on calendar \"%s\" do append log (n = 1)" weekly));
  Session.advance_days s 6;
  (* One injected failure at the trigger, then the 60 s retry succeeds. *)
  (match Session.rule_errors s with
  | [ ("tick", at, 1, msg) ] ->
    check_int "failed at the trigger instant" (day_instant 5) at;
    check_bool "labelled as injected" true
      (String.length msg >= 8 && String.sub msg 0 8 = "injected")
  | errs -> Alcotest.failf "expected one injected failure, got %d" (List.length errs));
  check_int "retry succeeded" 1 (count s "retrieve (log.n) from log");
  (match Session.rule_health s "tick" with
  | Some (fired, failures, quarantined) ->
    check_int "fired once" 1 fired;
    check_int "failure streak reset" 0 failures;
    check_bool "not quarantined" false quarantined
  | None -> Alcotest.fail "rule health missing")

let test_injected_exec_fault_no_partial_state () =
  let inj = Injector.create ~seed:6 () in
  Injector.set_exec_fault inj ~times:1 ();
  let s = session ~injector:inj () in
  ignore (run s "create table t (n int)");
  (match Session.query s "append t (n = 1)" with
  | Error e -> check_bool "injected exec fault surfaces" true
      (String.length e >= 8 && String.sub e 0 8 = "injected")
  | Ok _ -> Alcotest.fail "armed mutation must fail");
  check_int "no partial state" 0 (count s "retrieve (t.n) from t");
  ignore (run s "append t (n = 2)");
  check_int "next mutation clean" 1 (count s "retrieve (t.n) from t")

let test_injected_clock_jump_regression () =
  let inj = Injector.create ~seed:8 () in
  let s = session ~injector:inj () in
  Session.advance_days s 2;
  Injector.set_clock_jump inj (fun i -> i - 3 * 86400);
  (match Session.advance_days s 1 with
  | _ -> Alcotest.fail "backwards jump must be rejected"
  | exception Cal_rules.Next_fire.Clock_regression { now; target } ->
    check_int "now" (day_instant 3) now;
    check_int "target" (day_instant 3 - 2 * 86400) target);
  check_int "clock unchanged" (day_instant 3) (Session.now s)

(* ------------------------------------------------------------------ *)
(* Crash / recover, directed *)

(* The directed crash tests pin [Sync_each]: their survivor counts are
   the per-record durability contract, regardless of the policy the
   environment (CI's CALRULES_JOURNAL_GROUP) asks suites to default to. *)

let test_crash_torn_append_drops_one_op () =
  with_journal_path @@ fun path ->
  let inj = Injector.create ~seed:21 () in
  Injector.set_crash_at_append inj ~torn:5 2;
  let s =
    Session.open_journaled ~path ~epoch:epoch93 ~lifespan:lifespan93 ~injector:inj
      ~policy:Journal.Sync_each ()
  in
  ignore (run s "create table t (n int)");
  (match Session.query s "append t (n = 1)" with
  | _ -> Alcotest.fail "second journal append must crash"
  | exception Injector.Crash _ -> ());
  (* The crashed image had applied the append; the torn record loses it. *)
  let r = Session.recover ~path ~epoch:epoch93 ~lifespan:lifespan93 () in
  check_int "table survives, torn row does not" 0 (count r "retrieve (t.n) from t");
  let oracle = session () in
  ignore (run oracle "create table t (n int)");
  check_bool "digest = oracle of surviving prefix" true
    (Session.state_digest r = Session.state_digest oracle)

let test_crash_after_full_append_keeps_op () =
  with_journal_path @@ fun path ->
  let inj = Injector.create ~seed:22 () in
  Injector.set_crash_at_append inj 2 (* whole record written, then dies *);
  let s =
    Session.open_journaled ~path ~epoch:epoch93 ~lifespan:lifespan93 ~injector:inj
      ~policy:Journal.Sync_each ()
  in
  ignore (run s "create table t (n int)");
  (match Session.query s "append t (n = 1)" with
  | _ -> Alcotest.fail "second journal append must crash"
  | exception Injector.Crash _ -> ());
  let r = Session.recover ~path ~epoch:epoch93 ~lifespan:lifespan93 () in
  check_int "completed record replays" 1 (count r "retrieve (t.n) from t")

(* A segmented journal under the same crash: the injector tears one
   segment's tail mid-append, and recovery — which decodes the segments
   in parallel and merges by sequence — must still equal the oracle that
   ran only the surviving prefix. *)
let test_segmented_crash_recovery () =
  List.iter
    (fun segments ->
      with_journal_path @@ fun path ->
      let inj = Injector.create ~seed:23 () in
      Injector.set_crash_at_append inj ~torn:5 5;
      let s =
        Session.open_journaled ~path ~epoch:epoch93 ~lifespan:lifespan93
          ~segments ~injector:inj ~policy:Journal.Sync_each ()
      in
      let ops =
        [
          "create table t (n int)";
          "create table log (n int)";
          Printf.sprintf "define rule tues on calendar \"%s\" do append log (n = 1)" weekly;
          "append t (n = 1)";
          "append t (n = 2)" (* fifth append: torn *);
          "append t (n = 3)";
        ]
      in
      let applied =
        let rec go n = function
          | [] -> n
          | op :: rest -> (
            match Session.query s op with
            | _ -> go (n + 1) rest
            | exception Injector.Crash _ -> n)
        in
        go 0 ops
      in
      check_int "crashed on the fifth op" 4 applied;
      (* The layout is auto-detected from the manifest, not re-specified. *)
      let r =
        Session.recover ~path ~epoch:epoch93 ~lifespan:lifespan93 ~policy:Journal.Sync_each ()
      in
      let oracle = session () in
      List.iteri (fun i op -> if i < applied then ignore (run oracle op)) ops;
      check_bool
        (Printf.sprintf "digest = oracle prefix (%d segments)" segments)
        true
        (Session.state_digest r = Session.state_digest oracle);
      (* The recovered journal keeps its layout and stays appendable. *)
      check_int "layout preserved" segments (Journal.detect_segments path);
      ignore (run r "append t (n = 9)");
      let r2 = Session.recover ~path ~epoch:epoch93 ~lifespan:lifespan93 () in
      check_int "post-recovery appends replay" 2 (count r2 "retrieve (t.n) from t"))
    [ 2; 3 ]

let test_recover_restores_rule_machinery () =
  with_journal_path @@ fun path ->
  let s = Session.open_journaled ~path ~epoch:epoch93 ~lifespan:lifespan93 () in
  ignore (run s "create table log (n int)");
  ignore (run s (Printf.sprintf "define rule good on calendar \"%s\" do append log (n = 1)" weekly));
  ignore (run s (Printf.sprintf "define rule bad on calendar \"%s\" do append nosuch (n = 0)" weekly));
  Session.advance_days s 6;
  Session.commit s (* a durability point, whatever policy the env picked *);
  let digest = Session.state_digest s in
  (* Abandon the process image; rebuild from disk alone. *)
  let r = Session.recover ~path ~epoch:epoch93 ~lifespan:lifespan93 () in
  check_bool "bit-identical state" true (Session.state_digest r = digest);
  check_bool "quarantine survives recovery" true (Session.quarantined_rules r = [ "bad" ]);
  check_int "errors survive recovery" 3 (List.length (Session.rule_errors r));
  (* And the recovered session is live: the good rule keeps firing. *)
  Session.advance_days r 7;
  check_int "next trigger fires after recovery" 2 (count r "retrieve (log.n) from log")

let test_snapshot_truncates_and_recovers () =
  with_journal_path @@ fun path ->
  let s = Session.open_journaled ~path ~epoch:epoch93 ~lifespan:lifespan93 () in
  ignore (run s "create table t (n int)");
  ignore (run s "append t (n = 1)");
  Session.advance_days s 3;
  Session.snapshot s;
  check_bool "journal truncated" true (Journal.read_records path = []);
  check_bool "snapshot exists" true (Sys.file_exists (path ^ ".snap"));
  ignore (run s "append t (n = 2)");
  Session.commit s;
  let digest = Session.state_digest s in
  let r = Session.recover ~path ~epoch:epoch93 ~lifespan:lifespan93 () in
  check_bool "snapshot + journal tail recover" true (Session.state_digest r = digest);
  check_int "clock restored" (day_instant 4) (Session.now r);
  check_int "rows restored" 2 (count r "retrieve (t.n) from t")

let test_snapshot_requires_journal () =
  let s = session () in
  match Session.snapshot s with
  | () -> Alcotest.fail "snapshot on a non-journaled session must fail"
  | exception Session.Session_error _ -> ()

(* Session.batch journals everything f () completes as one commit group;
   recovery (whose tail-drop rewrite preserves framing) keeps it one. *)
let test_session_batch_atomic_group () =
  with_journal_path @@ fun path ->
  let s =
    Session.open_journaled ~path ~epoch:epoch93 ~lifespan:lifespan93
      ~policy:Journal.Sync_each ()
  in
  ignore (run s "create table t (n int)");
  let v =
    Session.batch s (fun () ->
        ignore (run s "append t (n = 1)");
        ignore (run s "append t (n = 2)");
        42)
  in
  check_int "batch returns f's value" 42 v;
  (match Journal.read_groups path with
  | [ [ _create ]; [ _a1; _a2 ] ] -> ()
  | gs -> Alcotest.failf "expected [create];[append;append], got %d groups" (List.length gs));
  let r = Session.recover ~path ~epoch:epoch93 ~lifespan:lifespan93 () in
  (match Journal.read_groups path with
  | [ [ _ ]; [ _; _ ] ] -> ()
  | _ -> Alcotest.fail "recovery rewrite must preserve group framing");
  check_int "rows recovered" 2 (count r "retrieve (t.n) from t")

(* A Group-policy session buffers statements; an un-committed tail is
   lost to recovery (the documented loss window) while committed groups
   land — and an explicit Session.commit closes the window. *)
let test_session_group_policy_loss_window () =
  with_journal_path @@ fun path ->
  let s =
    Session.open_journaled ~path ~epoch:epoch93 ~lifespan:lifespan93
      ~policy:(Journal.Group 3) ()
  in
  ignore (run s "create table t (n int)");
  ignore (run s "append t (n = 1)");
  ignore (run s "append t (n = 2)") (* window of 3 filled: auto-commit *);
  ignore (run s "append t (n = 3)") (* buffered, not yet durable *);
  let r = Session.recover ~path ~epoch:epoch93 ~lifespan:lifespan93 () in
  check_int "committed group recovers, buffered tail lost" 2
    (count r "retrieve (t.n) from t");
  ignore (run r "append t (n = 4)") (* recover reopens under ?policy (env default here) *);
  Session.commit r;
  let r2 = Session.recover ~path ~epoch:epoch93 ~lifespan:lifespan93 () in
  check_int "explicit commit makes the tail durable" 3
    (count r2 "retrieve (t.n) from t")

(* Coalesced firing batches journal as commit groups of replay-neutral
   "fired <at> <rule>" records, separate from statement records. *)
let test_firing_batches_journal_as_groups () =
  with_journal_path @@ fun path ->
  let s =
    Session.open_journaled ~path ~epoch:epoch93 ~lifespan:lifespan93
      ~policy:Journal.Sync_each ()
  in
  ignore (run s "create table log (n int)");
  ignore (run s (Printf.sprintf "define rule a on calendar \"%s\" do append log (n = 1)" weekly));
  ignore (run s (Printf.sprintf "define rule b on calendar \"%s\" do append log (n = 1)" weekly));
  Session.advance_days s 6;
  check_int "both rules fired" 2 (count s "retrieve (log.n) from log");
  let is_fired r = String.length r >= 6 && String.sub r 0 6 = "fired " in
  let groups = Journal.read_groups path in
  let fired = List.concat (List.filter (fun g -> List.exists is_fired g) groups) in
  check_int "one provenance record per firing" 2 (List.length fired);
  check_bool "fired records never share a group with statements" true
    (List.for_all (fun g -> List.for_all is_fired g || not (List.exists is_fired g)) groups);
  check_bool "records name the instant and rule" true
    (List.exists (fun r -> r = Printf.sprintf "fired %d a" (day_instant 5)) fired
    && List.exists (fun r -> r = Printf.sprintf "fired %d b" (day_instant 5)) fired);
  (* Provenance is replay-neutral: recovery re-fires by replaying the
     advance, landing on the identical digest. *)
  let digest = Session.state_digest s in
  let r = Session.recover ~path ~epoch:epoch93 ~lifespan:lifespan93 () in
  check_bool "fired records replay as no-ops" true (Session.state_digest r = digest)

(* ------------------------------------------------------------------ *)
(* Catch-up policies *)

(* One journaled week of a Tuesday rule, then downtime: the clock stops
   at day 7 with the next trigger at day 12, and we catch up to day 28
   having missed the Tuesdays of days 12, 19 and 26. *)
let catchup_setup path =
  let s = Session.open_journaled ~path ~epoch:epoch93 ~lifespan:lifespan93 () in
  ignore (run s "create table log (n int)");
  ignore (run s (Printf.sprintf "define rule tues on calendar \"%s\" do append log (n = 1)" weekly));
  Session.advance_days s 6;
  check_int "one firing before downtime" 1 (count s "retrieve (log.n) from log");
  Session.commit s;
  Session.recover ~path ~epoch:epoch93 ~lifespan:lifespan93 ()

let test_catch_up_replay_all () =
  with_journal_path @@ fun path ->
  let s = catchup_setup path in
  Session.catch_up s ~policy:Cal_rules.Manager.Replay_all (day_instant 28);
  check_int "every missed trigger fired" 4 (count s "retrieve (log.n) from log");
  let ats = List.map (fun f -> f.Cal_rules.Manager.at) (Session.firings s) in
  check_bool "fired at the historical instants" true
    (ats = List.map day_instant [ 5; 12; 19; 26 ])

let test_catch_up_skip () =
  with_journal_path @@ fun path ->
  let s = catchup_setup path in
  Session.catch_up s ~policy:Cal_rules.Manager.Skip (day_instant 28);
  check_int "missed triggers skipped" 1 (count s "retrieve (log.n) from log");
  check_bool "rescheduled strictly after the catch-up instant" true
    (Cal_rules.Manager.next_fire s.Session.manager "tues" = Some (day_instant 33));
  Session.advance_days s 7;
  check_int "fires once at the next natural trigger" 2 (count s "retrieve (log.n) from log")

let test_catch_up_fire_once () =
  with_journal_path @@ fun path ->
  let s = catchup_setup path in
  Session.catch_up s ~policy:Cal_rules.Manager.Fire_once (day_instant 28);
  check_int "one compensating firing" 2 (count s "retrieve (log.n) from log");
  check_bool "compensation runs at the catch-up instant" true
    (List.exists
       (fun f -> f.Cal_rules.Manager.rule = "tues" && f.at = day_instant 28)
       (Session.firings s));
  check_bool "then back on schedule" true
    (Cal_rules.Manager.next_fire s.Session.manager "tues" = Some (day_instant 33))

let test_catch_up_survives_recovery () =
  with_journal_path @@ fun path ->
  let s = catchup_setup path in
  Session.catch_up s ~policy:Cal_rules.Manager.Fire_once (day_instant 28);
  Session.commit s;
  let digest = Session.state_digest s in
  let r = Session.recover ~path ~epoch:epoch93 ~lifespan:lifespan93 () in
  check_bool "catch-up replays bit-identically" true (Session.state_digest r = digest)

(* ------------------------------------------------------------------ *)
(* Crash consistency, property-based *)

type op =
  | Stmt of string
  | Advance of int (* days *)
  | Stored of int
  | Snapshot
  | Commit

let show_op = function
  | Stmt q -> Printf.sprintf "Stmt %S" q
  | Advance d -> Printf.sprintf "Advance %d" d
  | Stored i -> Printf.sprintf "Stored %d" i
  | Snapshot -> "Snapshot"
  | Commit -> "Commit"

(* Every op completes one public Session call. A statement journals one
   record; an Advance additionally journals each coalesced firing batch
   as a commit group of replay-neutral provenance records. The pool
   deliberately includes statements that fail (duplicate creates,
   missing tables, rules with broken actions): completed errors journal
   and replay like successes. *)
let stmt_pool =
  [
    "create table t (n int)";
    "create table log (n int)";
    "append t (n = 1)";
    "append t (n = 2)";
    "append log (n = 7)";
    "delete t where t.n = 1";
    "replace t (n = 5) where t.n = 2";
    "retrieve (t.n) from t";
    "define rule week on calendar \"[2]/DAYS:during:WEEKS\" do append log (n = 1)";
    "define rule badw on calendar \"[4]/DAYS:during:WEEKS\" do append nosuch (n = 0)";
    "define rule ev on append to t do append log (n = 3)";
    "drop rule week";
  ]

let apply_op s = function
  | Stmt q -> ignore (Session.query s q)
  | Advance d -> Session.advance_days s d
  | Stored i ->
    Session.define_stored_calendar s
      ~name:(Printf.sprintf "H%d" i)
      [ (i, i + 1); (i + 10, i + 12) ]
  | Snapshot -> if Session.is_journaled s then Session.snapshot s
  | Commit -> Session.commit s (* a no-op on the (non-journaled) oracle *)

let op_gen =
  QCheck2.Gen.(
    frequency
      [
        (6, map (fun q -> Stmt q) (oneofl stmt_pool));
        (3, map (fun d -> Advance d) (int_range 1 4));
        (1, map (fun i -> Stored i) (int_range 1 3));
        (1, return Snapshot);
        (1, return Commit);
      ])

(* A trace: the ops, which armed crash point dies (counted in logical
   appends or in physical group flushes — may never be reached), and how
   many bytes of the victim record land on disk (None = all of them). *)
let trace_gen =
  QCheck2.Gen.(
    quad
      (list_size (int_range 3 22) op_gen)
      (int_range 1 30)
      (oneofl [ None; Some 0; Some 5; Some 200 ])
      bool (* false: crash at an append; true: crash at a group flush *))

let print_trace (ops, crash_n, torn, at_flush) =
  Printf.sprintf "crash at %s %d, torn %s\n%s"
    (if at_flush then "flush" else "append")
    crash_n
    (match torn with None -> "-" | Some b -> string_of_int b)
    (String.concat "\n" (List.map show_op ops))

(* The property, policy-generic: run a random trace on a journaled
   session with a crash armed at a random logical append or physical
   group flush. Whatever the crash interrupts, the recovered state must
   equal SOME oracle prefix of the trace — a buffered policy may lose an
   uncommitted suffix, but recovery never tears an op in half, never
   reorders, never invents state. Tightness on top of membership:
   - any Snapshot or Commit op that completed is a durability floor, so
     the recovered prefix reaches at least that far under every policy;
   - under Sync_each every completed op is durable: a crash during op j
     recovers at least ops 1..j-1 (exactly the old per-record contract);
   - a run that completes (ending in an explicit commit) recovers the
     full trace, bit-identically, under every policy. *)
let crash_consistency_prop ?policy (ops, crash_n, torn, at_flush) =
  with_journal_path @@ fun path ->
  let inj = Injector.create ~seed:99 () in
  (match (at_flush, torn) with
  | true, None -> Injector.set_crash_at_flush inj crash_n
  | true, Some b -> Injector.set_crash_at_flush inj ~torn:b crash_n
  | false, None -> Injector.set_crash_at_append inj crash_n
  | false, Some b -> Injector.set_crash_at_append inj ~torn:b crash_n);
  let s =
    Session.open_journaled ~path ~epoch:epoch93 ~lifespan:lifespan93 ~injector:inj ?policy ()
  in
  let n = List.length ops in
  (* crashed_at = Some j: op j (1-based) raised Crash; n + 1 marks the
     trailing explicit commit; None: the whole trace is durable. *)
  let crashed_at =
    let rec go i = function
      | [] -> (
        match Session.commit s with
        | () -> None
        | exception Injector.Crash _ -> Some (n + 1))
      | op :: rest -> (
        match apply_op s op with
        | () -> go (i + 1) rest
        | exception Injector.Crash _ -> Some i)
    in
    go 1 ops
  in
  (* Oracle digests of every prefix: digests.(k) = state after ops 1..k. *)
  let oracle = session () in
  let digests = Array.make (n + 1) (Session.state_digest oracle) in
  List.iteri
    (fun i op ->
      apply_op oracle op;
      digests.(i + 1) <- Session.state_digest oracle)
    ops;
  let recovered = Session.recover ~path ~epoch:epoch93 ~lifespan:lifespan93 () in
  let rd = Session.state_digest recovered in
  let kmax =
    let rec go k = if k < 0 then -1 else if digests.(k) = rd then k else go (k - 1) in
    go n
  in
  let completed = match crashed_at with None -> n | Some j -> j - 1 in
  let durability_floor =
    snd
      (List.fold_left
         (fun (i, f) op ->
           ((i + 1), if i <= completed && (op = Snapshot || op = Commit) then i else f))
         (1, 0) ops)
  in
  let sync_each = policy = Some Journal.Sync_each in
  kmax >= 0 (* membership: recovered ∈ {oracle prefixes} *)
  && kmax >= durability_floor
  &&
  match crashed_at with
  | None -> rd = digests.(n)
  | Some j -> (not sync_each) || kmax >= min (j - 1) n

let crash_consistency_tests =
  let make ~name ~count ?policy gen =
    QCheck2.Test.make ~name ~count ~print:print_trace gen (fun trace ->
        crash_consistency_prop ?policy trace)
  in
  [
    (* The pre-group-commit contract, now as the Sync_each instance. *)
    make ~name:"sync_each: recover = oracle prefix (tight)" ~count:45
      ~policy:Journal.Sync_each trace_gen;
    (* Whatever policy the environment picked (CI re-runs the suite
       under CALRULES_JOURNAL_GROUP=64). *)
    make ~name:"env-default policy crash consistency" ~count:30 trace_gen;
    (* A small window exercises auto-commit boundaries and mid-group
       flush crashes within short traces. *)
    make ~name:"group 4 crash consistency" ~count:35 ~policy:(Journal.Group 4) trace_gen;
    make ~name:"group 64 crash consistency" ~count:25 ~policy:(Journal.Group 64) trace_gen;
    make ~name:"manual crash consistency" ~count:30 ~policy:Journal.Manual trace_gen;
    (* Same property through a pre-seeded state: snapshot early, so most
       crashes land in the journal tail beyond it. *)
    make ~name:"crash consistency across snapshots" ~count:25 ~policy:Journal.Sync_each
      QCheck2.Gen.(
        map
          (fun (ops, k, torn, fl) ->
            (Stmt "create table t (n int)" :: Snapshot :: ops, k, torn, fl))
          trace_gen);
  ]

(* ------------------------------------------------------------------ *)
(* Group-commit policy from the environment *)

(* The CALRULES_JOURNAL_GROUP matrix: accepted spellings map to their
   policy; malformed values — a window of zero, a negative, junk — raise
   a clear Journal_error instead of silently defaulting. The original
   value is restored afterwards (unset and "" are behavior-identical,
   both mean Sync_each). *)
let test_policy_of_env_matrix () =
  let var = "CALRULES_JOURNAL_GROUP" in
  let original = Sys.getenv_opt var in
  let restore () = Unix.putenv var (Option.value original ~default:"") in
  Fun.protect ~finally:restore @@ fun () ->
  let policy v =
    Unix.putenv var v;
    Journal.policy_of_env ()
  in
  List.iter
    (fun (v, expected) ->
      check_bool (Printf.sprintf "%S accepted" v) true (policy v = expected))
    [
      ("", Journal.Sync_each);
      ("1", Journal.Sync_each);
      (" 1 ", Journal.Sync_each);
      ("8", Journal.Group 8);
      (" 64 ", Journal.Group 64);
      ("manual", Journal.Manual);
      ("MANUAL", Journal.Manual);
      (* OCaml integer literal syntax is accepted wholesale. *)
      ("0x10", Journal.Group 16);
    ];
  List.iter
    (fun v ->
      match policy v with
      | _ -> Alcotest.failf "%S must be rejected" v
      | exception Journal.Journal_error msg ->
        check_bool
          (Printf.sprintf "%S error names the variable" v)
          true
          (String.length msg > 0
          && String.sub msg 0 (String.length var) = var))
    [ "0"; "-3"; "junk"; "2x"; "1.5" ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "faults"
    [
      ( "injector",
        [
          Alcotest.test_case "seeded determinism" `Quick test_injector_determinism;
          Alcotest.test_case "budgets and scoping" `Quick test_injector_budgets;
          Alcotest.test_case "disabled injector" `Quick test_injector_disabled;
          Alcotest.test_case "clock jump knob" `Quick test_injector_clock_jump;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail dropped" `Quick test_journal_torn_tail_dropped;
          Alcotest.test_case "corrupt middle raises" `Quick test_journal_corrupt_middle_raises;
          Alcotest.test_case "truncate and rewrite" `Quick test_journal_truncate_and_rewrite;
          Alcotest.test_case "injected torn write" `Quick test_journal_injected_torn_write;
          Alcotest.test_case "segmented roundtrip" `Quick test_journal_segmented_roundtrip;
          Alcotest.test_case "segmented torn tail" `Quick test_journal_segmented_torn_tail;
          Alcotest.test_case "segmented gap raises" `Quick test_journal_segmented_gap_raises;
          Alcotest.test_case "policy_of_env matrix" `Quick test_policy_of_env_matrix;
        ] );
      ( "group-commit",
        [
          Alcotest.test_case "sync_each bytes are the legacy format" `Quick
            test_sync_each_bytes_golden;
          Alcotest.test_case "group policy buffers and auto-commits" `Quick
            test_group_policy_buffers_and_autocommits;
          Alcotest.test_case "manual policy commit and truncate" `Quick
            test_manual_policy_commit_and_truncate;
          Alcotest.test_case "append_batch is one atomic group" `Quick
            test_append_batch_atomic_group;
          Alcotest.test_case "reserved frame byte rejected" `Quick test_reserved_byte_rejected;
          Alcotest.test_case "append_batch on a segmented journal" `Quick
            test_append_batch_segmented;
          Alcotest.test_case "rewrite_groups preserves framing" `Quick
            test_rewrite_groups_preserves_framing;
          Alcotest.test_case "torn group flush drops the group whole" `Quick
            test_torn_group_flush_drops_whole_group;
          Alcotest.test_case "crash between flushes loses buffer whole" `Quick
            test_crash_between_flushes_loses_buffer_whole;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "failing rule leaves batch intact" `Quick
            test_failing_rule_does_not_abort_batch;
          Alcotest.test_case "retry, backoff, quarantine" `Quick
            test_retry_backoff_then_quarantine;
          Alcotest.test_case "event-rule isolation" `Quick
            test_event_rule_isolation_and_quarantine;
          Alcotest.test_case "injected action fault then recovery" `Quick
            test_injected_action_fault_then_recovery;
          Alcotest.test_case "injected exec fault, no partial state" `Quick
            test_injected_exec_fault_no_partial_state;
          Alcotest.test_case "injected clock jump hits regression guard" `Quick
            test_injected_clock_jump_regression;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "torn append drops one op" `Quick
            test_crash_torn_append_drops_one_op;
          Alcotest.test_case "full append survives crash" `Quick
            test_crash_after_full_append_keeps_op;
          Alcotest.test_case "segmented crash recovery" `Quick
            test_segmented_crash_recovery;
          Alcotest.test_case "rule machinery recovers" `Quick
            test_recover_restores_rule_machinery;
          Alcotest.test_case "snapshot truncates and recovers" `Quick
            test_snapshot_truncates_and_recovers;
          Alcotest.test_case "snapshot requires journal" `Quick test_snapshot_requires_journal;
          Alcotest.test_case "session batch is one commit group" `Quick
            test_session_batch_atomic_group;
          Alcotest.test_case "group policy loss window and commit" `Quick
            test_session_group_policy_loss_window;
          Alcotest.test_case "firing batches journal as groups" `Quick
            test_firing_batches_journal_as_groups;
        ] );
      ( "catch-up",
        [
          Alcotest.test_case "replay_all" `Quick test_catch_up_replay_all;
          Alcotest.test_case "skip" `Quick test_catch_up_skip;
          Alcotest.test_case "fire_once" `Quick test_catch_up_fire_once;
          Alcotest.test_case "catch-up survives recovery" `Quick test_catch_up_survives_recovery;
        ] );
      qsuite "crash-consistency" crash_consistency_tests;
    ]
