(* The periodic normal form against its oracles.

   Unit tests pin the offset algebra at its boundaries (period 1, the
   empty set, spans at period-1, the lcm overflow guard, minimality of
   the stored period) and golden compilations. The qcheck suites then
   prove, on random translatable expressions and random windows — far
   beyond the lifespan the interval-set paths are bounded by — that the
   closed form, the array interval-set evaluator and the retained list
   implementation agree on membership, instances, next-fire and nth
   queries. *)

open Cal_lang

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* The same small world as test_props: epoch Jan 1 1988 (so civil dates
   are easy to pin), a 2-year lifespan for the lifespan-bounded paths. *)

let epoch = Civil.make 1988 1 1
let lifespan = (Civil.make 1988 1 1, Civil.make 1989 12 31)

let make_env () =
  let env = Env.create () in
  Env.define_stored env ~name:"HOLIDAYS" ~granularity:Granularity.Days
    (Interval_set.of_pairs [ (1, 1); (46, 47) ]);
  (match
     Env.define_script env ~name:"TUESDAYS" ~source:"{ return ([3]/DAYS:during:WEEKS); }"
   with
  | Ok () -> ()
  | Error e -> failwith e);
  env

let ctx = Context.create ~epoch ~lifespan ~cache_capacity:0 ~env:(make_env ()) ()

let parse s =
  match Parser.expr s with Ok e -> e | Error e -> Alcotest.failf "parse %S: %s" s e

(* ------------------------------------------------------------------ *)
(* Offset-algebra boundaries. *)

let test_full_and_empty () =
  let full = Periodic.make ~period:1 [ (0, 1) ] in
  check_int "full period" 1 (Periodic.period full);
  check_bool "covers everywhere" true
    (List.for_all (Periodic.covers full) [ -5; 0; 1; 123_456_789 ]);
  check_bool "next on full" true (Periodic.next_start full 41 = Some (42, 1));
  check_int "count over [-50,50]" 101 (Periodic.count_starts full ~lo:(-50) ~hi:50);
  check_bool "nth on full" true (Periodic.nth_start full ~from_:10 3 = Some (12, 1));
  check_bool "empty is empty" true (Periodic.is_empty Periodic.empty);
  check_int "empty period is 1" 1 (Periodic.period Periodic.empty);
  check_bool "empty from make" true (Periodic.is_empty (Periodic.make ~period:9 []));
  check_bool "empty has no next" true (Periodic.next_start Periodic.empty 0 = None);
  check_bool "empty covers nothing" false (Periodic.covers Periodic.empty 3);
  check_int "empty count" 0 (Periodic.count_starts Periodic.empty ~lo:(-10) ~hi:10);
  check_bool "union with empty" true (Periodic.equal (Periodic.union Periodic.empty full) full);
  check_bool "diff to empty" true (Periodic.is_empty (Periodic.diff full full))

let test_wrap_at_period_boundary () =
  (* A span at offset period-1 whose instances wrap into the next cycle:
     [6,8] covers offsets 6,7,8 == 6,0,1 (mod 7). *)
  let t = Periodic.make ~period:7 [ (6, 3) ] in
  check_int "period kept" 7 (Periodic.period t);
  check_bool "span normalized" true (Periodic.spans t = [ (6, 3) ]);
  List.iter
    (fun o -> check_bool (Printf.sprintf "covers %d" o) true (Periodic.covers t o))
    [ 6; 7; 8; 0; 1; -1 ];
  List.iter
    (fun o -> check_bool (Printf.sprintf "not covers %d" o) false (Periodic.covers t o))
    [ 2; 3; 4; 5; -3 ];
  check_bool "next wraps a full cycle" true (Periodic.next_start t 6 = Some (13, 3));
  check_bool "mem_span far out" true (Periodic.mem_span t ((7 * 1000) + 6, 3));
  check_bool "mem_span wrong length" false (Periodic.mem_span t (6, 2))

let test_minimal_period () =
  let a = Periodic.make ~period:14 [ (0, 2); (7, 2) ] in
  check_int "14 -> 7" 7 (Periodic.period a);
  check_bool "spans reduced" true (Periodic.spans a = [ (0, 2) ]);
  check_bool "canonical equality" true (Periodic.equal a (Periodic.make ~period:7 [ (0, 2) ]));
  let b = Periodic.make ~period:6 [ (1, 1); (3, 1); (5, 1) ] in
  check_int "6 -> 2" 2 (Periodic.period b);
  check_bool "spans b" true (Periodic.spans b = [ (1, 1) ]);
  (* Different lengths at the shifted residue block minimization. *)
  let c = Periodic.make ~period:14 [ (0, 2); (7, 3) ] in
  check_int "14 stays" 14 (Periodic.period c);
  (* Offsets are reduced mod the period and deduplicated. *)
  let d = Periodic.make ~period:7 [ (8, 1); (1, 1); (-6, 1) ] in
  check_int "one span after reduction" 1 (Periodic.span_count d);
  check_bool "reduced offset" true (Periodic.spans d = [ (1, 1) ])

let test_lcm_guard () =
  (* Coprime periods whose lcm exceeds the cap: every lifted operation
     must degrade by raising, never wrap or truncate. *)
  let a = Periodic.make ~period:9973 [ (0, 1) ] in
  let b = Periodic.make ~period:10007 [ (1, 1) ] in
  check_bool "cap sanity" true (9973 * 10007 > Periodic.max_period);
  List.iter
    (fun (name, f) ->
      match f a b with
      | (_ : Periodic.t) -> Alcotest.failf "%s must raise, not wrap" name
      | exception Periodic.Unrepresentable _ -> ())
    [
      ("union", Periodic.union);
      ("inter", Periodic.inter);
      ("diff", Periodic.diff);
      ("pointwise_union", Periodic.pointwise_union);
      ("pointwise_inter", Periodic.pointwise_inter);
      ("pointwise_diff", Periodic.pointwise_diff);
    ];
  (* The compiler degrades to the oracle paths instead of raising: a
     second-granularity view of months needs period 146097*86400. *)
  let e = parse "[1]/SECONDS:during:MONTHS" in
  check_bool "gate accepts the shape" true (Periodic.translatable ctx.Context.env e);
  check_bool "compile degrades to None" true (Periodic.compile ctx e = None)

let test_pointwise_units () =
  let full = Periodic.make ~period:1 [ (0, 1) ] in
  check_bool "complement full" true (Periodic.is_empty (Periodic.complement full));
  check_bool "complement empty" true (Periodic.equal (Periodic.complement Periodic.empty) full);
  (* Coverage {6,0,1,2} mod 7 via a wrapping span. *)
  let t = Periodic.make ~period:7 [ (1, 2); (6, 2) ] in
  let c = Periodic.complement t in
  List.iter
    (fun o ->
      check_bool
        (Printf.sprintf "complement flips %d" o)
        (not (Periodic.covers t o))
        (Periodic.covers c o))
    (List.init 30 (fun i -> i - 10));
  check_bool "t + complement = full" true (Periodic.equal (Periodic.pointwise_union t c) full);
  check_bool "t - t pointwise = empty" true (Periodic.is_empty (Periodic.pointwise_diff t t));
  check_bool "double complement = pointwise" true
    (Periodic.equal (Periodic.complement c) (Periodic.pointwise t))

(* ------------------------------------------------------------------ *)
(* Compilation goldens: epoch-anchored shapes with known forms. *)

let test_compile_golden () =
  (match Periodic.compile ctx (parse "DAYS") with
  | Some (Granularity.Days, t) ->
    check_int "unit period" 1 (Periodic.period t);
    check_bool "unit span" true (Periodic.spans t = [ (0, 1) ])
  | _ -> Alcotest.fail "DAYS must compile");
  (match Periodic.compile ctx (parse "[2]/DAYS:during:WEEKS") with
  | Some (Granularity.Days, t) ->
    check_int "weekly period" 7 (Periodic.period t);
    (* Weeks anchor on Monday; the epoch Jan 1 1988 is a Friday, so the
       second day of each week (Tuesday) is day offset 4 — Jan 5 1988. *)
    check_bool "tuesdays" true (Periodic.spans t = [ (4, 1) ])
  | _ -> Alcotest.fail "weekly must compile");
  (match Periodic.compile ctx (parse "[1]/MONTHS:during:YEARS") with
  | Some (Granularity.Months, t) ->
    check_int "yearly period" 12 (Periodic.period t);
    check_bool "january" true (Periodic.spans t = [ (0, 1) ])
  | _ -> Alcotest.fail "yearly must compile");
  match Periodic.compile ctx (parse "[1]/DAYS:during:MONTHS") with
  | Some (Granularity.Days, t) ->
    (* Month firsts repeat over the 146097-day Gregorian cycle: 400 years
       of 12 months. *)
    check_int "gregorian cycle" 146097 (Periodic.period t);
    check_int "4800 month starts" 4800 (Periodic.span_count t);
    (match Periodic.next_start t 0 with
    | Some (s, 1) ->
      check_int "first start after epoch day is Feb 1 1988"
        (Civil.rata_die (Civil.make 1988 2 1) - Civil.rata_die epoch)
        s
    | _ -> Alcotest.fail "expected a length-1 instance")
  | _ -> Alcotest.fail "month-firsts must compile"

let test_gate_rejections () =
  let env = ctx.Context.env in
  let rejected e =
    check_bool "gate rejects" false (Periodic.translatable env e);
    check_bool "compile refuses" true (Periodic.compile ctx e = None)
  in
  rejected (parse "1988/YEARS");
  rejected (parse "HOLIDAYS");
  rejected (parse "TUESDAYS");
  rejected (Ast.Lit [ (170, 180) ]);
  rejected (Ast.Select (Ast.Index [ Ast.Nth 2 ], Ast.Ident "WEEKS"));
  rejected (Ast.Calop { counts = [ 2 ]; arg = Ast.Ident "DAYS" });
  rejected
    (Ast.Foreach { strict = false; op = Listop.Before; lhs = Ast.Ident "DAYS"; rhs = Ast.Ident "WEEKS" });
  rejected
    (Ast.Foreach { strict = false; op = Listop.Le; lhs = Ast.Ident "DAYS"; rhs = Ast.Ident "WEEKS" });
  (* Meets and Contains are window-local: periodic accepts them even
     though the streaming gate does not. *)
  let meets =
    Ast.Foreach { strict = false; op = Listop.Meets; lhs = Ast.Ident "WEEKS"; rhs = Ast.Ident "MONTHS" }
  in
  check_bool "meets translatable" true (Periodic.translatable env meets);
  check_bool "meets not streamable" false (Planner.streamable env meets);
  check_bool "meets compiles" true (Periodic.compile ctx meets <> None);
  (* Difference needs a statically-flat operand. *)
  let nested = parse "DAYS:during:WEEKS" in
  rejected (Ast.Diff (nested, nested));
  check_bool "diff with a flat side ok" true
    (Periodic.translatable env (Ast.Diff (nested, Ast.Ident "DAYS")))

(* ------------------------------------------------------------------ *)
(* Deterministic far-edge window: offsets within a factor of two of
   max_int / gregorian-cycle, far beyond any lifespan, where the closed
   form and generate-based evaluation must still agree exactly. *)

let test_far_edge_window () =
  let e = parse "[1]/DAYS:during:MONTHS" in
  match Periodic.compile ctx e with
  | None -> Alcotest.fail "must compile"
  | Some (_, pset) ->
    let edge = max_int / 146097 / 2 in
    List.iter
      (fun o0 ->
        let wlo = o0 - 400 and whi = o0 + 400 in
        let window = Interval.make (Chronon.of_offset wlo) (Chronon.of_offset whi) in
        let naive = Calendar.flatten (fst (Interp.eval_expr_naive ctx ~window e)) in
        let ps = Periodic.to_interval_set pset ~window in
        let interior iv =
          Chronon.to_offset (Interval.lo iv) > wlo + 80
          && Chronon.to_offset (Interval.hi iv) < whi - 80
        in
        let ni = Interval_set.filter interior naive in
        let pi = Interval_set.filter interior ps in
        check_bool (Printf.sprintf "edge window at %d" o0) true (Interval_set.equal ni pi);
        check_bool "window is populated" true (Interval_set.cardinal pi > 10))
      [ edge; edge / 2; 1_000_000_000_000 ]

(* ------------------------------------------------------------------ *)
(* Random translatable expressions. The generator mirrors the compiler's
   gate: basic granularities, window-local foreach, per-reference index
   selection over a foreach, unions, differences with a flat side. *)

let gran_ident = QCheck2.Gen.oneofl [ "DAYS"; "WEEKS"; "MONTHS"; "YEARS" ]

let wl_op =
  QCheck2.Gen.oneofl
    Listop.[ During; Overlaps; Intersects; Starts; Finishes; Equals; Meets; Contains ]

let atom_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun i -> Ast.Nth i) (oneofl [ 1; 2; 3; -1; -2 ]);
        return Ast.Last;
        map2 (fun a b -> Ast.Range (min a b, max a b)) (int_range 1 4) (int_range 1 4);
      ])

let translatable_gen =
  QCheck2.Gen.(
    sized_size (int_range 0 4)
    @@ fix (fun self n ->
           let ident = map (fun g -> Ast.Ident g) gran_ident in
           let foreach m =
             map3
               (fun (strict, op) lhs rhs -> Ast.Foreach { strict; op; lhs; rhs })
               (pair bool wl_op) (self (m / 2)) (self (m / 2))
           in
           (* Statically-flat shapes, for difference operands. *)
           let rec flat m =
             if m <= 0 then ident
             else
               oneof
                 [
                   ident;
                   map2 (fun a b -> Ast.Union (a, b)) (flat (m - 1)) (flat (m - 1));
                   map3
                     (fun atom lhs rhs ->
                       Ast.Select
                         (Ast.Index [ atom ],
                          Ast.Foreach { strict = false; op = Listop.During; lhs; rhs }))
                     (oneof [ map (fun i -> Ast.Nth i) (oneofl [ 1; 2; -1 ]); return Ast.Last ])
                     (self (m / 2)) (flat (m / 2));
                 ]
           in
           if n <= 0 then ident
           else
             oneof
               [
                 ident;
                 map2 (fun a b -> Ast.Union (a, b)) (self (n / 2)) (self (n / 2));
                 map2 (fun a b -> Ast.Diff (a, b)) (self (n / 2)) (flat (n / 2));
                 map2 (fun a b -> Ast.Diff (a, b)) (flat (n / 2)) (self (n / 2));
                 foreach n;
                 map2
                   (fun atoms f -> Ast.Select (Ast.Index atoms, f))
                   (list_size (int_range 1 3) atom_gen)
                   (foreach (n - 1));
               ]))

let print_expr = Pretty.expr_to_string

(* Upper bound on seconds per unit, to keep window instants far from
   overflow at any granularity. *)
let sec_ub = function
  | Granularity.Seconds -> 1
  | Granularity.Minutes -> 60
  | Granularity.Hours -> 3600
  | Granularity.Days -> 86400
  | Granularity.Weeks -> 604800
  | Granularity.Months -> 2678400
  | Granularity.Years -> 31622400
  | Granularity.Decades -> 316224000
  | Granularity.Centuries -> 3162240000

(* Window bases: near zero, and far beyond the old lifespan bound out to
   the instant-representation edge for the expression's fine unit. *)
let base_gen =
  QCheck2.Gen.(
    oneof
      [
        int_range (-500) 2500;
        oneofl [ 1_000_000; 1_000_000_000; 1_000_000_000_000; -1_000_003; -999_999_937; max_int ];
      ])

let clamp_base fine b =
  let cap = max_int / 2 / sec_ub fine in
  max (-cap) (min cap b)

let offs iv = (Chronon.to_offset (Interval.lo iv), Interval.length iv)

(* The one differential that matters: for every compiling expression and
   window, the closed form, generate-based evaluation (array interval
   sets) and the retained list implementation agree — on the instance
   set, on membership, and on next/nth/count queries. *)
let periodic_matches_oracle =
  QCheck2.Test.make ~name:"periodic = interval-set = list oracle (300 random cases)" ~count:300
    ~print:(fun (e, b, w) -> Printf.sprintf "%s @ base %d width %d" (print_expr e) b w)
    QCheck2.Gen.(triple translatable_gen base_gen (int_range 60 300))
    (fun (e, b, w) ->
      match Periodic.compile ctx e with
      | None -> true
      | Some (fine, pset) ->
        let b = clamp_base fine b in
        let pad = Planner.pad_for ~fine (Gran.grans_of_expr ctx.Context.env e) in
        (* Window-edge artifacts (clipped units feeding a relation) reach
           at most ~2 pads inward; evaluate over a window 4 pads wider
           than the compared range so the interior is exact. *)
        let slack = (4 * pad) + 8 in
        let wlo = b - slack and whi = b + w + slack in
        let window = Interval.make (Chronon.of_offset wlo) (Chronon.of_offset whi) in
        let naive = Calendar.flatten (fst (Interp.eval_expr_naive ctx ~window e)) in
        let ps = Periodic.to_interval_set pset ~window in
        (* Instances contained in [b, b+w]: whole in both evaluations. *)
        let interior iv =
          let lo, len = offs iv in
          lo >= b && lo + len - 1 <= b + w
        in
        let ni = Interval_set.filter interior naive in
        let pi = Interval_set.filter interior ps in
        let oracle = Interval_set_list.of_list (Interval_set.to_list ni) in
        (* Instance starts in [b, b+w] (whatever their end). *)
        let starts_in =
          List.filter_map
            (fun iv ->
              let o, len = offs iv in
              if o >= b && o <= b + w then Some (o, len) else None)
            (Interval_set.to_list naive)
        in
        let k = List.length starts_in in
        Interval_set.equal ni pi
        && Interval_set_list.to_pairs oracle = Interval_set.to_pairs pi
        && Periodic.instances_in pset ~lo:b ~hi:(b + w) = starts_in
        && Periodic.count_starts pset ~lo:b ~hi:(b + w) = k
        && (k = 0
           || List.of_seq (Seq.take k (Periodic.starts pset ~from_:b)) = starts_in
              && List.for_all (Periodic.mem_span pset) starts_in
              && (let n = 1 + (k / 2) in
                  Periodic.nth_start pset ~from_:b n = List.nth_opt starts_in (n - 1)))
        && (let probe = b + (w / 3) in
            match List.find_opt (fun (s, _) -> s > probe) starts_in with
            | None -> true
            | Some inst -> Periodic.next_start pset probe = Some inst)
        && List.for_all
             (fun i ->
               let o = b + (i * w / 16) in
               Periodic.covers pset o
               = Interval_set.contains_chronon naive (Chronon.of_offset o))
             (List.init 17 (fun i -> i)))

(* ------------------------------------------------------------------ *)
(* Next-fire strategies: inside the lifespan the closed form equals the
   materializing search instant for instant; beyond it, the periodic
   path keeps answering where the bounded paths go dormant. *)

let lifespan_end_instant =
  let _, le = lifespan in
  (Civil.rata_die le - Civil.rata_die epoch + 1) * 86400

let next_fire_strategies_agree =
  QCheck2.Test.make ~name:"Next_fire periodic = materialize within the lifespan" ~count:80
    ~print:(fun (e, d) -> Printf.sprintf "%s after day %d" (print_expr e) d)
    QCheck2.Gen.(pair translatable_gen (int_range 0 800))
    (fun (e, d) ->
      match Periodic.compile ctx e with
      | None -> true
      | Some (_, pset) ->
        let after = d * 86400 in
        let m = Cal_rules.Next_fire.next ctx e ~after ~strategy:`Materialize () in
        let p = Cal_rules.Next_fire.next ctx e ~after ~strategy:`Periodic () in
        Cal_rules.Next_fire.resolve ctx e `Auto = `Periodic
        && Cal_rules.Next_fire.next ctx e ~after () = p
        &&
        match (m, p) with
        | Some a, Some b -> a = b
        | Some _, None -> false
        | None, None -> Periodic.is_empty pset
        | None, Some b ->
          (* Dormant for the bounded search means the next occurrence is
             past the lifespan end — never before it. *)
          b > lifespan_end_instant)

let unbounded_horizon =
  QCheck2.Test.make ~name:"periodic next-fire beyond the lifespan = occurrence scan" ~count:40
    ~print:(fun (e, d) -> Printf.sprintf "%s after day %d" (print_expr e) d)
    QCheck2.Gen.(pair translatable_gen (oneofl [ 1_000; 40_000; 4_000_000; 3_000_000_000 ]))
    (fun (e, days) ->
      match Periodic.compile ctx e with
      | None -> true
      | Some (_, pset) ->
        if Periodic.is_empty pset then
          Cal_rules.Next_fire.next ctx e ~after:0 ~strategy:`Periodic () = None
        else begin
          let after = days * 86400 in
          match Cal_rules.Next_fire.next ctx e ~after ~strategy:`Periodic () with
          | None -> false
          | Some at ->
            at > after
            && ((at - after) / 86400 > 400
               (* the lifespan-free occurrence scan sees exactly this
                  instant first *)
               || Cal_rules.Next_fire.occurrences ctx e ~from_:after ~until:at = [ at ])
        end)

(* ------------------------------------------------------------------ *)
(* Algebra on random forms, against brute-force models. *)

let pset_gen =
  QCheck2.Gen.(
    map2
      (fun p spans -> Periodic.make ~period:p spans)
      (int_range 1 36)
      (list_size (int_range 0 5) (pair (int_range 0 200) (int_range 1 8))))

let print_pset t =
  Printf.sprintf "period %d [%s]" (Periodic.period t)
    (String.concat ";" (List.map (fun (r, l) -> Printf.sprintf "%d+%d" r l) (Periodic.spans t)))

let inst t = Periodic.instances_in t ~lo:(-180) ~hi:180

let elementwise_matches_instances =
  QCheck2.Test.make ~name:"element-wise union/inter/diff match instance sets" ~count:300
    ~print:(fun (a, b) -> print_pset a ^ " / " ^ print_pset b)
    QCheck2.Gen.(pair pset_gen pset_gen)
    (fun (a, b) ->
      let ia = inst a and ib = inst b in
      (try inst (Periodic.union a b) = List.sort_uniq compare (ia @ ib)
       with Periodic.Unrepresentable _ -> true)
      && (try inst (Periodic.inter a b) = List.filter (fun x -> List.mem x ib) ia
          with Periodic.Unrepresentable _ -> true)
      &&
      try inst (Periodic.diff a b) = List.filter (fun x -> not (List.mem x ib)) ia
      with Periodic.Unrepresentable _ -> true)

let pointwise_matches_coverage =
  QCheck2.Test.make ~name:"pointwise algebra matches chronon coverage" ~count:300
    ~print:(fun (a, b) -> print_pset a ^ " / " ^ print_pset b)
    QCheck2.Gen.(pair pset_gen pset_gen)
    (fun (a, b) ->
      let dom = List.init 120 (fun i -> i - 60) in
      try
        List.for_all
          (fun o ->
            Periodic.covers (Periodic.pointwise_union a b) o
            = (Periodic.covers a o || Periodic.covers b o)
            && Periodic.covers (Periodic.pointwise_inter a b) o
               = (Periodic.covers a o && Periodic.covers b o)
            && Periodic.covers (Periodic.pointwise_diff a b) o
               = (Periodic.covers a o && not (Periodic.covers b o))
            && Periodic.covers (Periodic.complement a) o = not (Periodic.covers a o)
            && Periodic.covers (Periodic.pointwise a) o = Periodic.covers a o)
          dom
      with Periodic.Unrepresentable _ -> true)

let minimality_and_canon =
  QCheck2.Test.make ~name:"stored period is minimal; lifting is canonical" ~count:300
    ~print:print_pset pset_gen (fun t ->
      if Periodic.is_empty t then Periodic.period t = 1
      else begin
        let p = Periodic.period t in
        let spans = Periodic.spans t in
        (* No proper divisor of the period reproduces the span set. *)
        List.for_all
          (fun q ->
            p mod q <> 0
            || List.exists (fun (r, l) -> not (Periodic.mem_span t (r + q, l))) spans)
          (List.init (p - 1) (fun i -> i + 1))
        && (* Rebuilding from a lifted copy at k*p is structurally equal. *)
        List.for_all
          (fun k ->
            Periodic.equal t
              (Periodic.make ~period:(k * p)
                 (List.concat_map (fun (r, l) -> List.init k (fun i -> (r + (i * p), l))) spans)))
          [ 2; 3 ]
      end)

let () =
  Alcotest.run "cal_periodic"
    [
      ( "boundaries",
        [
          Alcotest.test_case "full and empty" `Quick test_full_and_empty;
          Alcotest.test_case "wrap at period-1" `Quick test_wrap_at_period_boundary;
          Alcotest.test_case "minimal period" `Quick test_minimal_period;
          Alcotest.test_case "lcm overflow guard" `Quick test_lcm_guard;
          Alcotest.test_case "pointwise units" `Quick test_pointwise_units;
        ] );
      ( "compile",
        [
          Alcotest.test_case "goldens" `Quick test_compile_golden;
          Alcotest.test_case "gate rejections" `Quick test_gate_rejections;
          Alcotest.test_case "far-edge windows" `Quick test_far_edge_window;
        ] );
      qsuite "differential" [ periodic_matches_oracle ];
      qsuite "next-fire" [ next_fire_strategies_agree; unbounded_horizon ];
      qsuite "algebra"
        [ elementwise_matches_instances; pointwise_matches_coverage; minimality_and_canon ];
    ]
