(* The hierarchical timer wheel against its oracle, the stable min-heap:
   both pop in ascending (instant, insertion sequence), so any random
   trace of pushes and bounded drains must be observation-identical —
   and a DBCRON running on the wheel must match one running on the heap
   firing for firing. *)

module W = Cal_rules.Timer_wheel
module H = Cal_rules.Min_heap

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Unit tests *)

let test_wheel_basics () =
  let w = W.create ~horizon:86400 () in
  check_bool "empty" true (W.is_empty w);
  List.iter (fun (at, v) -> W.push w at v) [ (5, "e"); (1, "a"); (3, "c"); (2, "b") ];
  check_int "length" 4 (W.length w);
  check_bool "peek min" true (W.peek w = Some (1, "a"));
  let due = W.pop_due w 3 in
  check_bool "pop_due in order" true (due = [ (1, "a"); (2, "b"); (3, "c") ]);
  check_int "left" 1 (W.length w);
  check_bool "pop last" true (W.pop w = Some (5, "e"));
  check_bool "empty pop" true (W.pop w = None)

let test_wheel_stable_at_same_instant () =
  (* Entries at one instant pop in insertion order — the property that
     makes the wheel interchangeable with the stable heap. *)
  let w = W.create ~horizon:100 () in
  List.iter (fun v -> W.push w 42 v) [ "first"; "second"; "third" ];
  W.push w 7 "early";
  check_bool "insertion order preserved" true
    (W.pop_due w 100 = [ (7, "early"); (42, "first"); (42, "second"); (42, "third") ])

let test_wheel_overdue_clamp () =
  (* An entry pushed behind the wheel's current base (an overdue trigger
     after a restore) files at the cursor and sorts to the very front
     with its true instant. *)
  let w = W.create ~horizon:1000 () in
  W.push w 5000 "future";
  ignore (W.pop_due w 4000);
  (* base is now past 4000 *)
  W.push w 100 "overdue";
  check_bool "overdue entry is the minimum" true (W.peek w = Some (100, "overdue"));
  check_bool "pops before the in-window entry" true
    (W.pop_due w 6000 = [ (100, "overdue"); (5000, "future") ])

let test_wheel_overflow () =
  (* Instants beyond the direct span wait in overflow and re-file as the
     base approaches; nothing is lost and order holds. *)
  let w = W.create ~horizon:10 () in
  let far = 1 lsl 50 in
  W.push w far "far";
  W.push w (far + 1) "farther";
  W.push w 3 "near";
  check_int "all pending" 3 (W.length w);
  check_bool "near first" true (W.pop w = Some (3, "near"));
  check_bool "far next" true (W.pop w = Some (far, "far"));
  check_bool "farther last" true (W.pop w = Some (far + 1, "farther"))

let test_wheel_add_list_count () =
  let w = W.create ~horizon:100 () in
  check_int "empty batch" 0 (W.add_list w []);
  check_int "batch size returned" 3 (W.add_list w [ (4, "a"); (2, "b"); (9, "c") ]);
  check_int "all resident" 3 (W.length w);
  check_bool "sorted drain" true (W.pop_due w 10 = [ (2, "b"); (4, "a"); (9, "c") ])

let test_wheel_occupancy () =
  let w = W.create ~horizon:86400 () in
  check_int "empty occupancy" 0 (W.occupancy w);
  W.push w 10 "a";
  W.push w 11 "b";
  (* Adjacent instants in one level-0 block may share a slot, but
     occupancy is positive and bounded by the entry count. *)
  let occ = W.occupancy w in
  check_bool "occupied" true (occ >= 1 && occ <= 2);
  ignore (W.pop_due w 100);
  check_int "drained occupancy" 0 (W.occupancy w)

(* ------------------------------------------------------------------ *)
(* Differential properties *)

type op = Push of int | Due of int

let show_ops ops =
  String.concat ";"
    (List.map (function Push at -> Printf.sprintf "push %d" at | Due b -> Printf.sprintf "due %d" b) ops)

(* Random traces near probe-window scale: pushes (including overdue and
   far-overflow instants) interleaved with bounded drains. *)
let trace_gen =
  QCheck2.Gen.(
    let* horizon = int_range 1 200000 in
    let* nops = int_range 1 60 in
    let rec ops now n acc =
      if n = 0 then return (List.rev acc)
      else
        let* k = int_range 0 3 in
        if k = 0 then
          let* jump = int_range 0 (2 * horizon) in
          let now = now + jump in
          ops now (n - 1) (Due now :: acc)
        else
          let* off = int_range (-10) (3 * horizon) in
          ops now (n - 1) (Push (now + off) :: acc)
    in
    let* body = ops 0 nops [] in
    return (horizon, body @ [ Due max_int ]))

let prop_wheel_matches_heap =
  QCheck2.Test.make ~name:"wheel trace = heap trace" ~count:1000
    ~print:(fun (h, ops) -> Printf.sprintf "horizon %d: %s" h (show_ops ops))
    trace_gen
    (fun (horizon, ops) ->
      let w = W.create ~horizon () in
      let h = H.create () in
      List.for_all
        (fun op ->
          match op with
          | Push at ->
            let v = W.length w in
            W.push w at v;
            H.push h at v;
            true
          | Due bound -> W.pop_due w bound = H.pop_due h bound)
        ops
      && W.length w = H.length h)

(* A DBCRON on the wheel is indistinguishable from one on the heap:
   same firing sequence, same probe/loaded/peak/fired counters, under
   random probe periods, trigger stores and stepping patterns (the
   generator reused from the dbcron ordering property, boundary-heavy). *)
let prop_dbcron_wheel_matches_heap =
  QCheck2.Test.make ~name:"dbcron wheel = dbcron heap" ~count:500
    QCheck2.Gen.(
      triple
        (list_size (int_range 0 40) (int_range 1 5000))
        (int_range 1 1000)
        (list_size (int_range 1 10) (int_range 1 2000)))
    (fun (instants, probe_period, steps) ->
      let entries = List.mapi (fun i at -> (at, i)) instants in
      let run pending =
        let store = ref entries in
        let load ~window_end =
          let due, rest = List.partition (fun (at, _) -> at < window_end) !store in
          store := rest;
          due
        in
        let cron = Cal_rules.Dbcron.create ~pending ~probe_period ~now:0 ~load () in
        let fired = ref [] in
        let now = ref 0 in
        List.iter
          (fun step ->
            now := !now + step;
            fired := !fired @ Cal_rules.Dbcron.step cron ~now:!now ~load)
          steps;
        now := !now + 6000;
        fired := !fired @ Cal_rules.Dbcron.step cron ~now:!now ~load;
        ( !fired,
          Cal_rules.Dbcron.stats cron,
          Cal_rules.Dbcron.heap_peak cron,
          Cal_rules.Dbcron.fired cron )
      in
      run `Wheel = run `Heap)

(* Offers at and around the window boundary behave identically. *)
let prop_offer_boundary_identical =
  QCheck2.Test.make ~name:"offer acceptance identical across structures" ~count:300
    QCheck2.Gen.(pair (int_range 1 500) (list_size (int_range 0 30) (int_range 0 1500)))
    (fun (probe_period, offers) ->
      let load ~window_end:_ = [] in
      let wheel = Cal_rules.Dbcron.create ~pending:`Wheel ~probe_period ~now:0 ~load () in
      let heap = Cal_rules.Dbcron.create ~pending:`Heap ~probe_period ~now:0 ~load () in
      List.for_all
        (fun at -> Cal_rules.Dbcron.offer wheel at at = Cal_rules.Dbcron.offer heap at at)
        offers
      && Cal_rules.Dbcron.pending wheel = Cal_rules.Dbcron.pending heap)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "timer_wheel"
    [
      ( "wheel",
        [
          Alcotest.test_case "basics" `Quick test_wheel_basics;
          Alcotest.test_case "stable at same instant" `Quick test_wheel_stable_at_same_instant;
          Alcotest.test_case "overdue clamp" `Quick test_wheel_overdue_clamp;
          Alcotest.test_case "overflow beyond span" `Quick test_wheel_overflow;
          Alcotest.test_case "add_list count" `Quick test_wheel_add_list_count;
          Alcotest.test_case "occupancy" `Quick test_wheel_occupancy;
        ] );
      qsuite "wheel-props" [ prop_wheel_matches_heap ];
      qsuite "dbcron-diff"
        [ prop_dbcron_wheel_matches_heap; prop_offer_boundary_identical ];
    ]
