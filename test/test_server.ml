(* The socket front-end end-to-end: address and request parsing, a real
   Unix-socket server with framed replies and meta commands, concurrent
   clients multiplexed onto one store, per-connection stats, journaled
   recovery to the served digest, and clean shutdown. *)

module Store = Cal_server.Store
module Server = Cal_server.Server
module Client = Cal_server.Client
module Protocol = Cal_server.Protocol
open Calrules

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let epoch93 = Civil.make 1993 1 1
let lifespan93 = (Civil.make 1993 1 1, Civil.make 1999 12 31)
let session () = Session.create ~epoch:epoch93 ~lifespan:lifespan93 ()

let temp_sock () =
  let p = Filename.temp_file "calq_srv" ".sock" in
  Sys.remove p;
  p

let request_exn c line =
  match Client.request c line with
  | Ok lines -> lines
  | Error e -> Alcotest.failf "request %S failed: %s" line e

(* Start a server on a fresh Unix socket, run [f], always stop. *)
let with_server ?store f =
  let store = match store with Some s -> s | None -> Store.of_session (session ()) in
  let path = temp_sock () in
  let server = Server.start store (Unix.ADDR_UNIX path) in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f store server path)

(* ------------------------------------------------------------------ *)
(* Parsing *)

let test_sockaddr_parsing () =
  (match Protocol.sockaddr_of_string "unix:/tmp/x.sock" with
  | Unix.ADDR_UNIX p -> Alcotest.(check string) "unix path" "/tmp/x.sock" p
  | _ -> Alcotest.fail "expected ADDR_UNIX");
  (match Protocol.sockaddr_of_string "127.0.0.1:7070" with
  | Unix.ADDR_INET (_, port) -> check_int "tcp port" 7070 port
  | _ -> Alcotest.fail "expected ADDR_INET");
  List.iter
    (fun bad ->
      match Protocol.sockaddr_of_string bad with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "address %S should be rejected" bad)
    [ "nocolon"; "host:notaport"; "" ]

let test_request_classification () =
  (match Protocol.parse "retrieve (t.n) from t" with
  | Ok (Protocol.Reads [ _ ]) -> ()
  | _ -> Alcotest.fail "single retrieve classifies as a read batch");
  (match Protocol.parse "retrieve (t.n) from t; retrieve (t.n) from t" with
  | Ok (Protocol.Reads [ _; _ ]) -> ()
  | _ -> Alcotest.fail "all-retrieve line is one read batch");
  (match Protocol.parse "append t (n = 1); retrieve (t.n) from t" with
  | Ok (Protocol.Writes [ Store.Query _; Store.Query _ ]) -> ()
  | _ -> Alcotest.fail "mixed line is one write batch");
  (match Protocol.parse "advance 3" with
  | Ok (Protocol.Writes [ Store.Advance 3 ]) -> ()
  | _ -> Alcotest.fail "advance is a write statement");
  (match Protocol.parse "?digest" with
  | Ok Protocol.Digest -> ()
  | _ -> Alcotest.fail "?digest meta");
  (match Protocol.parse "?bogus" with
  | Error _ -> ()
  | _ -> Alcotest.fail "unknown meta rejected");
  match Protocol.parse "" with
  | Error _ -> ()
  | _ -> Alcotest.fail "empty line rejected"

(* ------------------------------------------------------------------ *)
(* One client, end to end *)

let test_single_client_roundtrip () =
  with_server @@ fun store _server _path ->
  let c = Client.connect (Server.addr _server) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  ignore (request_exn c "create table t (a int, b text)");
  ignore (request_exn c "append t (a = 1, b = 'x'); append t (a = 2, b = 'y')");
  let rows = request_exn c "retrieve (t.a, t.b) from t" in
  check_int "header + 2 rows" 3 (List.length rows);
  check_bool "header line" true (String.length (List.hd rows) > 0 && (List.hd rows).[0] = '#');
  (* Meta commands. *)
  (match request_exn c "?epoch" with
  | [ e ] -> check_bool "epoch line" true (String.length e > 6 && String.sub e 0 6 = "epoch ")
  | _ -> Alcotest.fail "?epoch is one line");
  (match request_exn c "?digest" with
  | [ d ] ->
    check_bool "digest matches the store's" true (d = "digest " ^ Store.digest store)
  | _ -> Alcotest.fail "?digest is one line");
  (match request_exn c "?stats" with
  | [ s ] -> check_bool "stats line" true (String.length s > 6 && String.sub s 0 6 = "stats ")
  | _ -> Alcotest.fail "?stats is one line");
  (match request_exn c "?connstats" with
  | [ s ] -> check_bool "connstats line" true (String.sub s 0 6 = "stats ")
  | _ -> Alcotest.fail "?connstats is one line");
  (* A failing statement surfaces as an error reply, and the store
     counts it. *)
  (match Client.request c "bogus nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse error must surface as err");
  let st = Store.stats store in
  check_bool "reads counted" true (st.Store.sreads >= 1);
  check_bool "writes counted" true (st.Store.swrites >= 2)

(* A write batch is one commit group: the epoch moves once per request
   line, not once per statement. *)
let test_epoch_per_batch () =
  with_server @@ fun store server _path ->
  let c = Client.connect (Server.addr server) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  ignore (request_exn c "create table t (n int)");
  let e0 = Store.epoch store in
  ignore (request_exn c "append t (n = 1); append t (n = 2); append t (n = 3)");
  check_int "three statements, one epoch" (e0 + 1) (Store.epoch store);
  ignore (request_exn c "append t (n = 4)");
  check_int "next batch, next epoch" (e0 + 2) (Store.epoch store)

(* ------------------------------------------------------------------ *)
(* Concurrent clients *)

let test_concurrent_clients () =
  with_server @@ fun store server _path ->
  let setup = Client.connect (Server.addr server) in
  ignore (request_exn setup "create table t (n int)");
  let n_clients = 4 and per_client = 25 in
  let errors = Atomic.make 0 in
  let client id () =
    let c = Client.connect (Server.addr server) in
    for i = 0 to per_client - 1 do
      let ok =
        match Client.request c (Printf.sprintf "append t (n = %d)" ((id * 1000) + i)) with
        | Ok _ -> true
        | Error _ -> false
      in
      let ok2 =
        match Client.request c "retrieve (t.n) from t" with Ok _ -> true | Error _ -> false
      in
      if not (ok && ok2) then Atomic.incr errors
    done;
    Client.close c
  in
  let threads = List.init n_clients (fun id -> Thread.create (client id) ()) in
  List.iter Thread.join threads;
  check_int "no client errors" 0 (Atomic.get errors);
  let rows = request_exn setup "retrieve (t.n) from t" in
  check_int "every append landed" (1 + (n_clients * per_client)) (List.length rows);
  check_bool "connections counted" true (Server.connections server >= n_clients + 1);
  let st = Store.stats store in
  check_int "write batches = append requests + setup"
    ((n_clients * per_client) + 1)
    st.Store.swrites;
  Client.close setup

(* ------------------------------------------------------------------ *)
(* Journaled store: served writes recover to the served digest *)

let test_served_writes_recover () =
  let path = Filename.temp_file "calq_srvj" ".journal" in
  let cleanup () =
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ path; path ^ ".snap"; path ^ ".tmp"; path ^ ".snap.tmp"; path ^ ".manifest" ]
  in
  Sys.remove path;
  Fun.protect ~finally:cleanup @@ fun () ->
  let store = Store.open_store ~path () in
  let live_digest =
    with_server ~store @@ fun store server _p ->
    let c = Client.connect (Server.addr server) in
    ignore (request_exn c "create table t (n int)");
    ignore (request_exn c "append t (n = 1); append t (n = 2)");
    ignore (request_exn c "append t (n = 3)");
    Client.close c;
    Store.digest store
  in
  Store.commit store;
  let recovered = Session.recover ~path () in
  let recovered_digest = Digest.to_hex (Digest.string (Session.state_digest recovered)) in
  check_bool "recovery reproduces the served state" true (recovered_digest = live_digest)

(* ------------------------------------------------------------------ *)
(* Shutdown *)

let test_stop_cleans_up () =
  let store = Store.of_session (session ()) in
  let path = temp_sock () in
  let server = Server.start store (Unix.ADDR_UNIX path) in
  let c = Client.connect (Server.addr server) in
  ignore (request_exn c "create table t (n int)");
  (* Stop with the client still connected: server must come back. *)
  Server.stop server;
  check_bool "socket file removed" false (Sys.file_exists path);
  (match Client.connect (Unix.ADDR_UNIX path) with
  | exception _ -> ()
  | _ -> Alcotest.fail "connect after stop must fail");
  (* The store survives the server. *)
  match Store.read store "retrieve (t.n) from t" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "store unusable after stop: %s" e

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "sockaddr parsing" `Quick test_sockaddr_parsing;
          Alcotest.test_case "request classification" `Quick test_request_classification;
        ] );
      ( "socket",
        [
          Alcotest.test_case "single client roundtrip" `Quick test_single_client_roundtrip;
          Alcotest.test_case "epoch per write batch" `Quick test_epoch_per_batch;
          Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
          Alcotest.test_case "journaled recovery of served writes" `Quick
            test_served_writes_recover;
          Alcotest.test_case "stop cleans up" `Quick test_stop_cleans_up;
        ] );
    ]
