(* The socket front-end end-to-end: address and request parsing, a real
   Unix-socket server with framed replies and meta commands, concurrent
   clients multiplexed onto one store, per-connection stats, journaled
   recovery to the served digest, and clean shutdown. *)

module Store = Cal_server.Store
module Server = Cal_server.Server
module Client = Cal_server.Client
module Protocol = Cal_server.Protocol
module Frame = Cal_server.Frame
open Calrules

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let epoch93 = Civil.make 1993 1 1
let lifespan93 = (Civil.make 1993 1 1, Civil.make 1999 12 31)
let session () = Session.create ~epoch:epoch93 ~lifespan:lifespan93 ()

let temp_sock () =
  let p = Filename.temp_file "calq_srv" ".sock" in
  Sys.remove p;
  p

let request_exn c line =
  match Client.request c line with
  | Ok lines -> lines
  | Error e -> Alcotest.failf "request %S failed: %s" line e

(* Start a server on a fresh Unix socket, run [f], always stop. *)
let with_server ?config ?store f =
  let store = match store with Some s -> s | None -> Store.of_session (session ()) in
  let path = temp_sock () in
  let server = Server.start ?config store (Unix.ADDR_UNIX path) in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f store server path)

(* Short-fuse config for the robustness matrix. *)
let snappy =
  {
    Server.request_deadline_s = 0.15;
    idle_timeout_s = 0.25;
    drain_timeout_s = 2.0;
  }

(* ------------------------------------------------------------------ *)
(* Parsing *)

let test_sockaddr_parsing () =
  (match Protocol.sockaddr_of_string "unix:/tmp/x.sock" with
  | Unix.ADDR_UNIX p -> Alcotest.(check string) "unix path" "/tmp/x.sock" p
  | _ -> Alcotest.fail "expected ADDR_UNIX");
  (match Protocol.sockaddr_of_string "127.0.0.1:7070" with
  | Unix.ADDR_INET (_, port) -> check_int "tcp port" 7070 port
  | _ -> Alcotest.fail "expected ADDR_INET");
  List.iter
    (fun bad ->
      match Protocol.sockaddr_of_string bad with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "address %S should be rejected" bad)
    [ "nocolon"; "host:notaport"; "" ]

let test_request_classification () =
  (match Protocol.parse "retrieve (t.n) from t" with
  | Ok (Protocol.Reads [ _ ]) -> ()
  | _ -> Alcotest.fail "single retrieve classifies as a read batch");
  (match Protocol.parse "retrieve (t.n) from t; retrieve (t.n) from t" with
  | Ok (Protocol.Reads [ _; _ ]) -> ()
  | _ -> Alcotest.fail "all-retrieve line is one read batch");
  (match Protocol.parse "append t (n = 1); retrieve (t.n) from t" with
  | Ok (Protocol.Writes [ Store.Query _; Store.Query _ ]) -> ()
  | _ -> Alcotest.fail "mixed line is one write batch");
  (match Protocol.parse "advance 3" with
  | Ok (Protocol.Writes [ Store.Advance 3 ]) -> ()
  | _ -> Alcotest.fail "advance is a write statement");
  (match Protocol.parse "?digest" with
  | Ok Protocol.Digest -> ()
  | _ -> Alcotest.fail "?digest meta");
  (match Protocol.parse "?bogus" with
  | Error _ -> ()
  | _ -> Alcotest.fail "unknown meta rejected");
  match Protocol.parse "" with
  | Error _ -> ()
  | _ -> Alcotest.fail "empty line rejected"

(* ------------------------------------------------------------------ *)
(* One client, end to end *)

let test_single_client_roundtrip () =
  with_server @@ fun store _server _path ->
  let c = Client.connect (Server.addr _server) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  ignore (request_exn c "create table t (a int, b text)");
  ignore (request_exn c "append t (a = 1, b = 'x'); append t (a = 2, b = 'y')");
  let rows = request_exn c "retrieve (t.a, t.b) from t" in
  check_int "header + 2 rows" 3 (List.length rows);
  check_bool "header line" true (String.length (List.hd rows) > 0 && (List.hd rows).[0] = '#');
  (* Meta commands. *)
  (match request_exn c "?epoch" with
  | [ e ] -> check_bool "epoch line" true (String.length e > 6 && String.sub e 0 6 = "epoch ")
  | _ -> Alcotest.fail "?epoch is one line");
  (match request_exn c "?digest" with
  | [ d ] ->
    check_bool "digest matches the store's" true (d = "digest " ^ Store.digest store)
  | _ -> Alcotest.fail "?digest is one line");
  (match request_exn c "?stats" with
  | [ s ] -> check_bool "stats line" true (String.length s > 6 && String.sub s 0 6 = "stats ")
  | _ -> Alcotest.fail "?stats is one line");
  (match request_exn c "?connstats" with
  | [ s ] -> check_bool "connstats line" true (String.sub s 0 6 = "stats ")
  | _ -> Alcotest.fail "?connstats is one line");
  (* A failing statement surfaces as an error reply, and the store
     counts it. *)
  (match Client.request c "bogus nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse error must surface as err");
  let st = Store.stats store in
  check_bool "reads counted" true (st.Store.sreads >= 1);
  check_bool "writes counted" true (st.Store.swrites >= 2)

(* A write batch is one commit group: the epoch moves once per request
   line, not once per statement. *)
let test_epoch_per_batch () =
  with_server @@ fun store server _path ->
  let c = Client.connect (Server.addr server) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  ignore (request_exn c "create table t (n int)");
  let e0 = Store.epoch store in
  ignore (request_exn c "append t (n = 1); append t (n = 2); append t (n = 3)");
  check_int "three statements, one epoch" (e0 + 1) (Store.epoch store);
  ignore (request_exn c "append t (n = 4)");
  check_int "next batch, next epoch" (e0 + 2) (Store.epoch store)

(* ------------------------------------------------------------------ *)
(* Concurrent clients *)

let test_concurrent_clients () =
  with_server @@ fun store server _path ->
  let setup = Client.connect (Server.addr server) in
  ignore (request_exn setup "create table t (n int)");
  let n_clients = 4 and per_client = 25 in
  let errors = Atomic.make 0 in
  let client id () =
    let c = Client.connect (Server.addr server) in
    for i = 0 to per_client - 1 do
      let ok =
        match Client.request c (Printf.sprintf "append t (n = %d)" ((id * 1000) + i)) with
        | Ok _ -> true
        | Error _ -> false
      in
      let ok2 =
        match Client.request c "retrieve (t.n) from t" with Ok _ -> true | Error _ -> false
      in
      if not (ok && ok2) then Atomic.incr errors
    done;
    Client.close c
  in
  let threads = List.init n_clients (fun id -> Thread.create (client id) ()) in
  List.iter Thread.join threads;
  check_int "no client errors" 0 (Atomic.get errors);
  let rows = request_exn setup "retrieve (t.n) from t" in
  check_int "every append landed" (1 + (n_clients * per_client)) (List.length rows);
  check_bool "connections counted" true (Server.connections server >= n_clients + 1);
  let st = Store.stats store in
  check_int "write batches = append requests + setup"
    ((n_clients * per_client) + 1)
    st.Store.swrites;
  Client.close setup

(* ------------------------------------------------------------------ *)
(* Journaled store: served writes recover to the served digest *)

let test_served_writes_recover () =
  let path = Filename.temp_file "calq_srvj" ".journal" in
  let cleanup () =
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ path; path ^ ".snap"; path ^ ".tmp"; path ^ ".snap.tmp"; path ^ ".manifest" ]
  in
  Sys.remove path;
  Fun.protect ~finally:cleanup @@ fun () ->
  let store = Store.open_store ~path () in
  let live_digest =
    with_server ~store @@ fun store server _p ->
    let c = Client.connect (Server.addr server) in
    ignore (request_exn c "create table t (n int)");
    ignore (request_exn c "append t (n = 1); append t (n = 2)");
    ignore (request_exn c "append t (n = 3)");
    Client.close c;
    Store.digest store
  in
  Store.commit store;
  let recovered = Session.recover ~path () in
  let recovered_digest = Digest.to_hex (Digest.string (Session.state_digest recovered)) in
  check_bool "recovery reproduces the served state" true (recovered_digest = live_digest)

(* ------------------------------------------------------------------ *)
(* Shutdown *)

let test_stop_cleans_up () =
  let store = Store.of_session (session ()) in
  let path = temp_sock () in
  let server = Server.start store (Unix.ADDR_UNIX path) in
  let c = Client.connect (Server.addr server) in
  ignore (request_exn c "create table t (n int)");
  (* Stop with the client still connected: server must come back. *)
  Server.stop server;
  check_bool "socket file removed" false (Sys.file_exists path);
  (match Client.connect (Unix.ADDR_UNIX path) with
  | exception _ -> ()
  | _ -> Alcotest.fail "connect after stop must fail");
  (* The store survives the server. *)
  match Store.read store "retrieve (t.n) from t" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "store unusable after stop: %s" e

(* ------------------------------------------------------------------ *)
(* Robustness matrix: dedup, shed, deadline, idle timeout, containment *)

(* The same @id-tagged write twice: the second replays the original
   reply without re-applying; a different id applies fresh. *)
let test_request_id_dedup () =
  with_server @@ fun store server _path ->
  let c = Client.connect (Server.addr server) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  ignore (request_exn c "create table t (n int)");
  let first = request_exn c "@tid-1 append t (n = 1)" in
  let second = request_exn c "@tid-1 append t (n = 1)" in
  check_bool "duplicate replays the original reply" true (first = second);
  let rows = request_exn c "retrieve (t.n) from t" in
  check_int "applied once" 2 (List.length rows) (* header + 1 row *);
  ignore (request_exn c "@tid-2 append t (n = 2)");
  let rows = request_exn c "retrieve (t.n) from t" in
  check_int "fresh id applies" 3 (List.length rows);
  let st = Store.stats store in
  check_int "dedup hit counted" 1 st.Store.sdedup;
  (* The id prefix is accepted and ignored on idempotent requests. *)
  (match request_exn c "@tid-3 ?epoch" with
  | [ e ] -> check_bool "meta with id" true (String.length e > 6 && String.sub e 0 6 = "epoch ")
  | _ -> Alcotest.fail "?epoch with id prefix is one line");
  match Client.request c "@bad!id append t (n = 9)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed request id must be rejected"

(* The id journals inside the batch's commit group, so dedup survives
   crash recovery: a post-recovery retry of an applied batch is refused. *)
let test_dedup_survives_recovery () =
  let path = Filename.temp_file "calq_dedup" ".journal" in
  let cleanup () =
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ path; path ^ ".snap"; path ^ ".tmp"; path ^ ".snap.tmp"; path ^ ".manifest" ]
  in
  Sys.remove path;
  Fun.protect ~finally:cleanup @@ fun () ->
  let store = Store.open_store ~path () in
  (match Store.write_idem ~req_id:"r1" store [ Store.Query "create table t (n int)" ] with
  | Store.Applied [ Ok _ ] -> ()
  | _ -> Alcotest.fail "create applies");
  (match Store.write_idem ~req_id:"r2" store [ Store.Query "append t (n = 7)" ] with
  | Store.Applied [ Ok _ ] -> ()
  | _ -> Alcotest.fail "append applies");
  Store.commit store;
  let recovered = Store.open_store ~path () in
  (match Store.write_idem ~req_id:"r2" recovered [ Store.Query "append t (n = 7)" ] with
  | Store.Duplicate _ -> ()
  | _ -> Alcotest.fail "recovered store must refuse an already-applied id");
  (match Store.read recovered "retrieve (t.n) from t" with
  | Ok (Cal_db.Exec.Rows { rows; _ }) -> check_int "one row after recovery + retry" 1 (List.length rows)
  | _ -> Alcotest.fail "retrieve after recovery");
  (* The reply cache does not survive recovery, but the effect does. *)
  check_bool "dedup counted on recovered store" true
    ((Store.stats recovered).Store.sdedup >= 1);
  (* Snapshot persistence: ids outlive journal truncation too. *)
  Session.snapshot (Store.session recovered);
  let again = Store.open_store ~path () in
  match Store.write_idem ~req_id:"r2" again [ Store.Query "append t (n = 7)" ] with
  | Store.Duplicate _ -> ()
  | _ -> Alcotest.fail "id set must survive a durable snapshot"

(* max_queue = 0 sheds every write at admission, as a retryable error,
   while reads still flow. *)
let test_shed_at_admission_bound () =
  let store = Store.of_session ~max_queue:0 (session ()) in
  (match Store.write_idem store [ Store.Query "create table t (n int)" ] with
  | Store.Overloaded -> ()
  | _ -> Alcotest.fail "zero-width admission queue sheds every write");
  check_int "shed counted" 1 (Store.stats store).Store.sshed;
  with_server ~store @@ fun _store server _path ->
  let c = Client.connect (Server.addr server) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.request c "create table t (n int)" with
  | Error msg ->
    check_bool "shed is retryable on the wire" true
      (String.length msg >= 9 && String.sub msg 0 9 = "retryable")
  | Ok _ -> Alcotest.fail "write through a full queue must shed");
  match Client.request c "?epoch" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "reads must flow during shed: %s" e

(* A write that cannot reach the busy writer before its deadline times
   out (retryable); one that can, lands. *)
let test_deadline_expiry () =
  with_server ~config:snappy @@ fun store server _path ->
  let c = Client.connect (Server.addr server) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  ignore (request_exn c "create table t (n int)");
  let holder = Thread.create (fun () -> Store.occupy_writer store 0.6) () in
  Thread.delay 0.05;
  (match Client.request c "append t (n = 1)" with
  | Error msg ->
    check_bool "deadline error is retryable" true
      (String.length msg >= 9 && String.sub msg 0 9 = "retryable")
  | Ok _ -> Alcotest.fail "write under an occupied writer must miss its 150ms deadline");
  Thread.join holder;
  check_bool "timeout counted" true ((Store.stats store).Store.stimeouts >= 1);
  (* Writer free again: the same statement lands (fresh connection — the
     first one sat idle past the 250ms idle timeout during the hold). *)
  let c2 = Client.connect (Server.addr server) in
  Fun.protect ~finally:(fun () -> Client.close c2) @@ fun () ->
  ignore (request_exn c2 "append t (n = 1)")

(* An idle connection is told why and closed; the server keeps serving. *)
let test_idle_timeout () =
  with_server ~config:snappy @@ fun _store server _path ->
  let c = Client.connect (Server.addr server) in
  let got =
    match Client.request c "?epoch" with
    | Ok _ -> (
      Thread.delay 0.7;
      (* Well past the 250ms idle timeout: the server has sent its
         parting err and shut the connection down. *)
      match Client.request c "?epoch" with
      | Ok _ -> Alcotest.fail "idle connection must be closed"
      | Error msg -> `Err msg
      | exception Client.Protocol_error _ -> `Dropped)
    | Error e -> Alcotest.failf "first request failed: %s" e
    | exception Client.Protocol_error e -> Alcotest.failf "first request failed: %s" e
  in
  (match got with
  | `Err msg -> check_bool "idle close says why" true (msg = "idle timeout")
  | `Dropped -> ());
  (try Unix.close c.Client.fd with Unix.Unix_error _ -> ());
  check_bool "idle drop counted" true (Server.idle_drops server >= 1);
  (* New connections are unaffected. *)
  let c2 = Client.connect (Server.addr server) in
  Fun.protect ~finally:(fun () -> Client.close c2) @@ fun () ->
  ignore (request_exn c2 "?epoch")

(* Abrupt disconnects — mid-line, mid-exchange, en masse — stay
   contained: each closes one connection, and the accept loop keeps
   accepting. *)
let test_error_containment () =
  with_server @@ fun _store server _path ->
  let setup = Client.connect (Server.addr server) in
  ignore (request_exn setup "create table t (n int)");
  for i = 0 to 9 do
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Server.addr server);
    (* Half a request — no newline — then vanish. *)
    let torn = Printf.sprintf "append t (n = %d" i in
    ignore (Unix.write_substring fd torn 0 (String.length torn));
    Unix.close fd
  done;
  (* Partial lines were discarded, nothing applied, server still up. *)
  let rows = request_exn setup "retrieve (t.n) from t" in
  check_int "torn requests never execute" 1 (List.length rows) (* header only *);
  check_bool "accept loop survived" true (Server.connections server >= 11);
  Client.close setup

(* Random bytes, torn frames and oversized lines never crash the
   server: every connection ends in a well-formed err or a clean close,
   and a well-formed client afterwards gets a well-formed answer. *)
let test_protocol_fuzz () =
  with_server @@ fun store server _path ->
  let setup = Client.connect (Server.addr server) in
  ignore (request_exn setup "create table t (n int)");
  ignore (request_exn setup "append t (n = 42)");
  let digest_before = Store.digest store in
  let rng = Random.State.make [| 0xF00D; 0xBEEF |] in
  for _ = 1 to 60 do
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Server.addr server);
    let len = Random.State.int rng 400 in
    let junk =
      String.init len (fun _ ->
          (* Bias toward newlines and printable junk, with raw bytes mixed in. *)
          match Random.State.int rng 10 with
          | 0 -> '\n'
          | 1 -> Char.chr (Random.State.int rng 256)
          | _ -> Char.chr (32 + Random.State.int rng 95))
    in
    (try ignore (Unix.write_substring fd junk 0 (String.length junk))
     with Unix.Unix_error _ -> ());
    (* Half the time read whatever comes back; it must frame as ok/err. *)
    if Random.State.bool rng then begin
      Frame.set_recv_timeout fd 0.5;
      let r = Cal_server.Frame.reader fd in
      match Cal_server.Frame.read_line r with
      | `Line l ->
        check_bool "reply frames as ok/err" true
          (String.length l >= 3 && (String.sub l 0 3 = "ok " || String.sub l 0 4 = "err "))
      | `Eof | `Timeout | `Closed _ | `Too_long -> ()
    end;
    try Unix.close fd with Unix.Unix_error _ -> ()
  done;
  (* One oversized frame: answered and closed, not crashed. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Server.addr server);
  let big = String.make (1 lsl 21) 'a' in
  (try
     ignore (Unix.write_substring fd big 0 (String.length big));
     ignore (Unix.write_substring fd "\n" 0 1)
   with Unix.Unix_error _ -> ());
  Frame.set_recv_timeout fd 2.0;
  let r = Cal_server.Frame.reader fd in
  (match Cal_server.Frame.read_line r with
  | `Line l -> check_bool "oversized frame answered" true (l = "err frame too long")
  | `Eof | `Closed _ -> () (* closed before we read: also acceptable *)
  | `Timeout -> Alcotest.fail "server hung on oversized frame"
  | `Too_long -> Alcotest.fail "reply itself oversized");
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (* The fuzz barrage changed nothing and the server still serves. *)
  check_bool "fuzz applied no writes" true (Store.digest store = digest_before);
  let rows = request_exn setup "retrieve (t.n) from t" in
  check_int "well-formed client still served" 2 (List.length rows);
  Client.close setup

(* The retrying client layer: converges through sheds, attaches one id
   across attempts, and respects its overall deadline. *)
let test_retrying_client () =
  with_server @@ fun store server _path ->
  ignore (Store.write store [ Store.Query "create table t (n int)" ]);
  let addr = Server.addr server in
  (* Occupy the writer briefly: the first attempts shed on deadline or
     queue, then the retry lands — exactly once. *)
  let holder = Thread.create (fun () -> Store.occupy_writer store 0.3) () in
  Thread.delay 0.02;
  (match Client.run ~retries:20 ~timeout_s:5.0 ~addr "append t (n = 5)" with
  | Ok _ -> ()
  | Error (Client.Server_error e) | Error (Client.Exhausted e) ->
    Alcotest.failf "retrying write failed: %s" e);
  Thread.join holder;
  (match Store.read store "retrieve (t.n) from t" with
  | Ok (Cal_db.Exec.Rows { rows; _ }) -> check_int "retried write applied once" 1 (List.length rows)
  | _ -> Alcotest.fail "retrieve");
  (* A non-retryable server error comes back immediately, not retried. *)
  (match Client.run ~retries:3 ~timeout_s:2.0 ~addr "append missing (n = 1)" with
  | Error (Client.Server_error _) -> ()
  | Ok _ -> Alcotest.fail "bad append must fail"
  | Error (Client.Exhausted _) -> Alcotest.fail "semantic errors must not be retried");
  (* Deadline expiry: against a dead address the call gives up in time. *)
  let t0 = Unix.gettimeofday () in
  match
    Client.run ~retries:1000 ~timeout_s:0.4
      ~addr:(Unix.ADDR_UNIX "/nonexistent/calq-chaos.sock")
      "append t (n = 6)"
  with
  | Error (Client.Exhausted _) ->
    check_bool "deadline respected" true (Unix.gettimeofday () -. t0 < 2.0)
  | Ok _ | Error (Client.Server_error _) -> Alcotest.fail "dead address must exhaust"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "sockaddr parsing" `Quick test_sockaddr_parsing;
          Alcotest.test_case "request classification" `Quick test_request_classification;
        ] );
      ( "socket",
        [
          Alcotest.test_case "single client roundtrip" `Quick test_single_client_roundtrip;
          Alcotest.test_case "epoch per write batch" `Quick test_epoch_per_batch;
          Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
          Alcotest.test_case "journaled recovery of served writes" `Quick
            test_served_writes_recover;
          Alcotest.test_case "stop cleans up" `Quick test_stop_cleans_up;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "request id dedup" `Quick test_request_id_dedup;
          Alcotest.test_case "dedup survives recovery" `Quick test_dedup_survives_recovery;
          Alcotest.test_case "shed at admission bound" `Quick test_shed_at_admission_bound;
          Alcotest.test_case "deadline expiry" `Quick test_deadline_expiry;
          Alcotest.test_case "idle timeout" `Quick test_idle_timeout;
          Alcotest.test_case "error containment" `Quick test_error_containment;
          Alcotest.test_case "protocol fuzz" `Quick test_protocol_fuzz;
          Alcotest.test_case "retrying client" `Quick test_retrying_client;
        ] );
    ]
