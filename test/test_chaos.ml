(* The network-chaos soak: a real client/server pair with a seeded
   fault-injecting proxy between them, driven by qcheck.

   The property (DESIGN.md §15): under any seeded trace of delays,
   short reads, payload truncations and mid-stream disconnects,

   - every retried write batch applies exactly once — the final served
     digest equals the serial oracle's, which duplicates or losses
     would both break (every append carries a distinct value);
   - no request outlives its overall deadline by more than scheduling
     slack;
   - a crash at any moment recovers to a commit-group prefix of the
     serial oracle — checked by recovering a mid-run copy of the live
     journal, exactly what a kill at that instant would leave.

   Seeds replay: the fault pattern of every connection derives from
   (seed, connection index, direction), so QCHECK_SEED pins the trace
   (CI runs two fixed seeds under two group-commit policies). *)

module Store = Cal_server.Store
module Server = Cal_server.Server
module Client = Cal_server.Client
module Netchaos = Cal_faults.Netchaos
open Calrules

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let temp_sock tag =
  let p = Filename.temp_file tag ".sock" in
  Sys.remove p;
  p

let rm p = try Sys.remove p with Sys_error _ -> ()

let journal_files path =
  [ path; path ^ ".snap"; path ^ ".tmp"; path ^ ".snap.tmp"; path ^ ".manifest" ]

let copy_file src dst =
  if Sys.file_exists src then begin
    let ic = open_in_bin src in
    let n = in_channel_length ic in
    let buf = really_input_string ic n in
    close_in ic;
    let oc = open_out_bin dst in
    output_string oc buf;
    close_out oc
  end

let session_digest s = Digest.to_hex (Digest.string (Session.state_digest s))

(* --- the trace ------------------------------------------------------ *)

(* Batch i of a trace: distinct appends (so a double-apply changes the
   digest) and, sometimes, a clock advance. The serial oracle applies
   the same batches in the same order to a plain in-memory session. *)
let batch_line i =
  if i mod 5 = 4 then Printf.sprintf "@soak-%d append t (n = %d); advance 1" i (i * 10)
  else if i mod 3 = 2 then
    Printf.sprintf "@soak-%d append t (n = %d); append t (n = %d)" i (i * 10) ((i * 10) + 1)
  else Printf.sprintf "@soak-%d append t (n = %d)" i (i * 10)

let apply_to_oracle oracle i =
  Session.batch oracle (fun () ->
      if i mod 5 = 4 then begin
        ignore (Session.query_exn oracle (Printf.sprintf "append t (n = %d)" (i * 10)));
        Session.advance_days oracle 1
      end
      else if i mod 3 = 2 then begin
        ignore (Session.query_exn oracle (Printf.sprintf "append t (n = %d)" (i * 10)));
        ignore (Session.query_exn oracle (Printf.sprintf "append t (n = %d)" ((i * 10) + 1)))
      end
      else ignore (Session.query_exn oracle (Printf.sprintf "append t (n = %d)" (i * 10))))

let expected_rows nbatches =
  let n = ref 0 in
  for i = 0 to nbatches - 1 do
    n := !n + (if i mod 3 = 2 && i mod 5 <> 4 then 2 else 1)
  done;
  !n

(* --- the soak property ---------------------------------------------- *)

let request_timeout_s = 10.0

let soak_prop (chaos_seed, nbatches) =
  let jpath = Filename.temp_file "calq_chaos" ".journal" in
  Sys.remove jpath;
  let jcopy = jpath ^ ".crashcopy" in
  let cleanup () = List.iter rm (journal_files jpath @ journal_files jcopy) in
  Fun.protect ~finally:cleanup @@ fun () ->
  (* Serial oracle: same statements, no server, no faults. Its digest
     after each batch is the set of legal recovery points. *)
  let oracle = Session.create () in
  (* Prefix 0 is the untouched session: under a wide group-commit
     window a crash can land before anything — the setup included —
     reached disk. *)
  let empty_digest = session_digest oracle in
  ignore (Session.query_exn oracle "create table t (n int)");
  let oracle_prefixes = Array.make (nbatches + 1) (session_digest oracle) in
  for i = 0 to nbatches - 1 do
    apply_to_oracle oracle i;
    oracle_prefixes.(i + 1) <- session_digest oracle
  done;
  let prefix_set = empty_digest :: Array.to_list oracle_prefixes in
  (* The served store, behind the chaos proxy. *)
  let store = Store.open_store ~path:jpath () in
  let config =
    { Server.request_deadline_s = 2.0; idle_timeout_s = 30.0; drain_timeout_s = 5.0 }
  in
  let server = Server.start ~config store (Unix.ADDR_UNIX (temp_sock "calq_chaos_srv")) in
  let stopped = ref false in
  Fun.protect ~finally:(fun () -> if not !stopped then Server.stop server) @@ fun () ->
  let proxy =
    Netchaos.start ~seed:chaos_seed ~upstream:(Server.addr server)
      (Unix.ADDR_UNIX (temp_sock "calq_chaos_pxy"))
  in
  let pstopped = ref false in
  Fun.protect ~finally:(fun () -> if not !pstopped then Netchaos.stop proxy) @@ fun () ->
  let addr = Netchaos.addr proxy in
  let run line =
    let t0 = Unix.gettimeofday () in
    let r = Client.run ~retries:100 ~timeout_s:request_timeout_s ~addr line in
    let elapsed = Unix.gettimeofday () -. t0 in
    if elapsed > request_timeout_s +. 2.0 then
      QCheck2.Test.fail_reportf "request outlived its deadline: %.1fs" elapsed;
    match r with
    | Ok _ -> ()
    | Error (Client.Server_error e) -> QCheck2.Test.fail_reportf "server error: %s" e
    | Error (Client.Exhausted e) -> QCheck2.Test.fail_reportf "retries exhausted: %s" e
  in
  run "@soak-setup create table t (n int)";
  let crash_at = nbatches / 2 in
  for i = 0 to nbatches - 1 do
    run (batch_line i);
    if i = crash_at then copy_file jpath jcopy
    (* what a kill right now would leave on disk *)
  done;
  (* Reads through the chaos proxy see a committed state too. *)
  run "retrieve (t.n) from t";
  Netchaos.stop proxy;
  pstopped := true;
  (* Exactly-once: the served digest equals the full oracle's. *)
  let served = Store.digest store in
  if served <> oracle_prefixes.(nbatches) then
    QCheck2.Test.fail_reportf
      "served digest diverged from the serial oracle (duplicate or lost batch)";
  (* Row count is the blunt double-apply detector. *)
  (match Store.read store "retrieve (t.n) from t" with
  | Ok (Cal_db.Exec.Rows { rows; _ }) ->
    if List.length rows <> expected_rows nbatches then
      QCheck2.Test.fail_reportf "expected %d rows, found %d" (expected_rows nbatches)
        (List.length rows)
  | _ -> QCheck2.Test.fail_reportf "final retrieve failed");
  (* Crash recovery: the mid-run journal copy is what a kill left
     behind; it must recover to some commit-group prefix of the oracle. *)
  if Sys.file_exists jcopy then begin
    let crashed = Session.recover ~path:jcopy () in
    let d = session_digest crashed in
    if not (List.mem d prefix_set) then
      QCheck2.Test.fail_reportf "mid-run journal recovered outside the oracle prefixes"
  end;
  (* Graceful stop flushes everything: recovery reproduces the full
     served state. *)
  Server.stop server;
  stopped := true;
  let recovered = Session.recover ~path:jpath () in
  if session_digest recovered <> served then
    QCheck2.Test.fail_reportf "clean-stop recovery diverged from the served state";
  true

let soak_gen =
  QCheck2.Gen.tup2 (QCheck2.Gen.int_bound 0xFF_FFFF) (QCheck2.Gen.int_range 8 16)

let soak_test =
  QCheck2.Test.make ~name:"chaos soak: exactly-once, deadlines, prefix recovery" ~count:6
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%#x nbatches=%d" seed n)
    soak_gen soak_prop

(* --- deterministic units -------------------------------------------- *)

(* A calm proxy is a faithful byte pump: a full roundtrip through it
   behaves exactly like a direct connection. *)
let test_calm_proxy_transparent () =
  let store = Store.of_session (Session.create ()) in
  let server = Server.start store (Unix.ADDR_UNIX (temp_sock "calq_calm_srv")) in
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let proxy =
    Netchaos.start ~config:Netchaos.calm ~seed:1 ~upstream:(Server.addr server)
      (Unix.ADDR_UNIX (temp_sock "calq_calm_pxy"))
  in
  Fun.protect ~finally:(fun () -> Netchaos.stop proxy) @@ fun () ->
  let c = Client.connect (Netchaos.addr proxy) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.request c "create table t (n int); append t (n = 1)" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "write through calm proxy: %s" e);
  (match Client.request c "retrieve (t.n) from t" with
  | Ok lines -> check_int "header + row through proxy" 2 (List.length lines)
  | Error e -> Alcotest.failf "read through calm proxy: %s" e);
  let st = Netchaos.stats proxy in
  check_bool "proxy saw the connection" true (st.Netchaos.conns >= 1);
  check_int "calm proxy injects nothing" 0
    (st.Netchaos.delays + st.Netchaos.shorts + st.Netchaos.truncations
   + st.Netchaos.disconnects)

(* Same seed, same single-connection exchange: the injected fault
   pattern replays (the per-connection decision stream is derived from
   the seed alone). *)
let test_seeded_faults_replay () =
  let run_once () =
    let store = Store.of_session (Session.create ()) in
    let server = Server.start store (Unix.ADDR_UNIX (temp_sock "calq_rep_srv")) in
    Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
    let config =
      { Netchaos.default_config with disconnect_rate = 0.0; truncate_rate = 0.0 }
    in
    let proxy =
      Netchaos.start ~config ~seed:77 ~upstream:(Server.addr server)
        (Unix.ADDR_UNIX (temp_sock "calq_rep_pxy"))
    in
    Fun.protect ~finally:(fun () -> Netchaos.stop proxy) @@ fun () ->
    let c = Client.connect (Netchaos.addr proxy) in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    for i = 0 to 9 do
      match Client.request c (Printf.sprintf "?epoch%s" (if i = 0 then "" else "")) with
      | Ok _ | Error _ -> ()
    done;
    let st = Netchaos.stats proxy in
    (st.Netchaos.delays, st.Netchaos.shorts)
  in
  let a = run_once () and b = run_once () in
  check_bool "same seed, same injected pattern" true (a = b)

let test_valid_req_ids () =
  List.iter
    (fun id -> check_bool id true (Session.valid_req_id id))
    [ "a"; "c123.42"; "node-1:batch_9"; String.make 128 'x' ];
  List.iter
    (fun id -> check_bool ("reject " ^ id) false (Session.valid_req_id id))
    [ ""; "has space"; "newline\n"; String.make 129 'x'; "quote'" ]

(* mark_request inside a batch journals with the batch: replaying the
   journal restores the id set. *)
let test_req_id_journal_roundtrip () =
  let path = Filename.temp_file "calq_reqid" ".journal" in
  Sys.remove path;
  Fun.protect ~finally:(fun () -> List.iter rm (journal_files path)) @@ fun () ->
  let s = Session.open_journaled ~path () in
  Session.batch s (fun () ->
      Session.mark_request s "alpha";
      ignore (Session.query_exn s "create table t (n int)"));
  check_bool "marked" true (Session.request_applied s "alpha");
  check_bool "unmarked" false (Session.request_applied s "beta");
  Session.commit s;
  let r = Session.recover ~path () in
  check_bool "id recovered from journal" true (Session.request_applied r "alpha");
  check_bool "other ids stay unknown" false (Session.request_applied r "beta")

let () =
  Alcotest.run "chaos"
    [
      ( "netchaos",
        [
          Alcotest.test_case "calm proxy is transparent" `Quick test_calm_proxy_transparent;
          Alcotest.test_case "seeded faults replay" `Quick test_seeded_faults_replay;
        ] );
      ( "exactly-once",
        [
          Alcotest.test_case "request id validation" `Quick test_valid_req_ids;
          Alcotest.test_case "request ids journal with their batch" `Quick
            test_req_id_journal_roundtrip;
        ] );
      qsuite "soak" [ soak_test ];
    ]
