(* Tests for the RRULE baseline: parsing, expansion against known
   calendars, and equivalence with the calendar algebra on the
   translatable fragment. *)

open Cal_lang
open Cal_rrule

let check_bool = Alcotest.(check bool)

let d = Civil.make

let dates_testable =
  Alcotest.testable
    (Fmt.list ~sep:(Fmt.any ",") (fun ppf x -> Fmt.string ppf (Civil.to_string x)))
    (fun a b -> List.length a = List.length b && List.for_all2 Civil.equal a b)

let check_dates = Alcotest.check dates_testable

let parse s = match Rrule.parse s with Ok r -> r | Error e -> Alcotest.failf "parse: %s" e

(* ------------------------------------------------------------------ *)
(* Parsing *)

let test_parse_roundtrip () =
  let cases =
    [
      "FREQ=DAILY";
      "FREQ=WEEKLY;BYDAY=TU";
      "FREQ=MONTHLY;BYDAY=3FR";
      "FREQ=MONTHLY;BYDAY=-1MO";
      "FREQ=MONTHLY;BYMONTHDAY=15";
      "FREQ=YEARLY;BYMONTH=11;BYDAY=4TH";
      "FREQ=DAILY;INTERVAL=2;COUNT=10";
      "FREQ=WEEKLY;UNTIL=19931231;BYDAY=MO,WE,FR";
      "FREQ=MONTHLY;BYDAY=MO,TU;BYSETPOS=-1";
    ]
  in
  List.iter
    (fun s ->
      (* Component order is not canonical; compare re-parsed structures. *)
      let r = parse s in
      check_bool s true (parse (Rrule.to_string r) = r))
    cases

let test_parse_errors () =
  let bad s = check_bool s true (Result.is_error (Rrule.parse s)) in
  bad "BYDAY=MO";
  bad "FREQ=HOURLY";
  bad "FREQ=DAILY;INTERVAL=0";
  bad "FREQ=DAILY;BYMONTH=13";
  bad "FREQ=DAILY;BYDAY=XX";
  bad "FREQ=DAILY;UNTIL=1993";
  bad "FREQ=DAILY;NOSUCH=1"

(* ------------------------------------------------------------------ *)
(* Expansion golden cases (1993, as in the paper's examples) *)

let expand ?until ?limit s dtstart =
  Expand.occurrences (parse s) ~dtstart ?until ?limit ()

let test_expand_daily () =
  check_dates "five days"
    [ d 1993 1 1; d 1993 1 2; d 1993 1 3; d 1993 1 4; d 1993 1 5 ]
    (expand "FREQ=DAILY;COUNT=5" (d 1993 1 1));
  check_dates "every other day"
    [ d 1993 1 1; d 1993 1 3; d 1993 1 5 ]
    (expand "FREQ=DAILY;INTERVAL=2;COUNT=3" (d 1993 1 1))

let test_expand_weekly_tuesdays () =
  (* Tuesdays of January 1993: 5, 12, 19, 26. *)
  check_dates "january tuesdays"
    [ d 1993 1 5; d 1993 1 12; d 1993 1 19; d 1993 1 26 ]
    (expand "FREQ=WEEKLY;BYDAY=TU" ~until:(d 1993 1 31) (d 1993 1 1))

let test_expand_third_friday () =
  (* Third Fridays of early 1993: Jan 15, Feb 19, Mar 19. *)
  check_dates "third fridays"
    [ d 1993 1 15; d 1993 2 19; d 1993 3 19 ]
    (expand "FREQ=MONTHLY;BYDAY=3FR;COUNT=3" (d 1993 1 1))

let test_expand_last_weekday () =
  check_dates "last mondays"
    [ d 1993 1 25; d 1993 2 22 ]
    (expand "FREQ=MONTHLY;BYDAY=-1MO;COUNT=2" (d 1993 1 1))

let test_expand_month_days () =
  check_dates "last day of month"
    [ d 1993 1 31; d 1993 2 28; d 1993 3 31 ]
    (expand "FREQ=MONTHLY;BYMONTHDAY=-1;COUNT=3" (d 1993 1 1));
  (* The 31st skips short months. *)
  check_dates "31st of months"
    [ d 1993 1 31; d 1993 3 31; d 1993 5 31 ]
    (expand "FREQ=MONTHLY;BYMONTHDAY=31;COUNT=3" (d 1993 1 1))

let test_expand_yearly () =
  (* US Thanksgiving: fourth Thursday of November. *)
  check_dates "thanksgiving"
    [ d 1993 11 25; d 1994 11 24; d 1995 11 23 ]
    (expand "FREQ=YEARLY;BYMONTH=11;BYDAY=4TH;COUNT=3" (d 1993 1 1));
  (* Anniversary skips non-leap years. *)
  check_dates "leap day"
    [ d 1996 2 29; d 2000 2 29 ]
    (expand "FREQ=YEARLY;COUNT=2" (d 1996 2 29))

let test_expand_setpos () =
  (* Last weekday (MO-FR) of each month. *)
  check_dates "last business-ish day"
    [ d 1993 1 29; d 1993 2 26 ]
    (expand "FREQ=MONTHLY;BYDAY=MO,TU,WE,TH,FR;BYSETPOS=-1;COUNT=2" (d 1993 1 1))

let test_expand_dtstart_filter () =
  (* Occurrences before dtstart are dropped. *)
  check_dates "starts mid-month"
    [ d 1993 1 19; d 1993 1 26 ]
    (expand "FREQ=WEEKLY;BYDAY=TU" ~until:(d 1993 1 31) (d 1993 1 13))

(* ------------------------------------------------------------------ *)
(* Equivalence with the calendar algebra *)

let epoch93 = Civil.make 1993 1 1

let algebra_days expr_src =
  let ctx =
    Context.create ~epoch:epoch93 ~lifespan:(Civil.make 1993 1 1, Civil.make 1994 12 31)
      ~env:(Env.create ()) ()
  in
  match Parser.expr expr_src with
  | Error e -> Alcotest.failf "algebra parse: %s" e
  | Ok e ->
    let cal, _ = Interp.eval_expr_planned ctx e in
    Calendar.flatten cal
    |> Interval_set.fold
         (fun acc iv ->
           let day = Chronon.to_offset (Interval.lo iv) in
           Civil.add_days epoch93 day :: acc)
         []
    |> List.filter (fun date -> date.Civil.year = 1993 || date.Civil.year = 1994)
    |> List.sort Civil.compare

let equiv_case name rrule_src =
  let rule = parse rrule_src in
  match Translate.to_expression rule with
  | None -> Alcotest.failf "%s: expected translatable" name
  | Some expr_src ->
    let via_rrule =
      Expand.occurrences rule ~dtstart:(d 1993 1 1) ~until:(d 1994 12 31) ()
    in
    let via_algebra = algebra_days expr_src in
    check_dates name via_rrule via_algebra

let test_translate_equivalence () =
  equiv_case "tuesdays" "FREQ=WEEKLY;BYDAY=TU";
  equiv_case "third friday" "FREQ=MONTHLY;BYDAY=3FR";
  equiv_case "last monday" "FREQ=MONTHLY;BYDAY=-1MO";
  equiv_case "15th of month" "FREQ=MONTHLY;BYMONTHDAY=15";
  equiv_case "last day of month" "FREQ=MONTHLY;BYMONTHDAY=-1";
  equiv_case "mon+fri" "FREQ=WEEKLY;BYDAY=MO,FR";
  equiv_case "thanksgiving" "FREQ=YEARLY;BYMONTH=11;BYDAY=4TH";
  equiv_case "nov 19" "FREQ=YEARLY;BYMONTH=11;BYMONTHDAY=19"

let test_untranslatable () =
  let none s = check_bool s true (Translate.to_expression (parse s) = None) in
  none "FREQ=DAILY;INTERVAL=2";
  none "FREQ=DAILY;COUNT=5";
  none "FREQ=MONTHLY;BYDAY=MO,TU;BYSETPOS=-1";
  none "FREQ=WEEKLY"

(* Every RRULE shape lands in exactly one of three buckets, and the
   classification is pinned here so a gate change shows up as a diff:
   - [periodic]: translates to the algebra AND compiles to the minimal
     periodic normal form (closed-form probes, unbounded horizon);
   - [fallback]: translates to the algebra but the closed form is
     unrepresentable, so evaluation uses the interval-set paths;
   - [opaque]: outside the translatable fragment entirely. *)

let ctx93 =
  Context.create ~epoch:epoch93 ~lifespan:(Civil.make 1993 1 1, Civil.make 1994 12 31)
    ~env:(Env.create ()) ()

let classify rule =
  match Translate.to_expression rule with
  | None -> "opaque"
  | Some src -> (
    match Parser.expr src with
    | Error e -> Alcotest.failf "translated expression must parse (%s): %s" src e
    | Ok e -> if Periodic.compile ctx93 e <> None then "periodic" else "fallback")

let test_translatability_matrix () =
  let matrix =
    [
      ("FREQ=DAILY", "periodic");
      ("FREQ=DAILY;BYDAY=MO,WE", "periodic");
      ("FREQ=WEEKLY;BYDAY=TU", "periodic");
      ("FREQ=WEEKLY;BYDAY=MO,FR", "periodic");
      ("FREQ=MONTHLY;BYDAY=3FR", "periodic");
      ("FREQ=MONTHLY;BYDAY=-1MO", "periodic");
      ("FREQ=MONTHLY;BYMONTHDAY=15", "periodic");
      ("FREQ=MONTHLY;BYMONTHDAY=-1", "periodic");
      ("FREQ=YEARLY;BYMONTH=11;BYMONTHDAY=19", "periodic");
      ("FREQ=YEARLY;BYMONTH=11;BYDAY=4TH", "periodic");
      ("FREQ=DAILY;INTERVAL=2", "opaque");
      ("FREQ=DAILY;COUNT=5", "opaque");
      ("FREQ=MONTHLY;BYDAY=MO,TU;BYSETPOS=-1", "opaque");
      ("FREQ=WEEKLY", "opaque");
    ]
  in
  List.iter
    (fun (src, expected) ->
      let rule = parse src in
      Alcotest.(check string) src expected (classify rule);
      (* Translate.to_periodic must agree with the classification, and on
         the periodic bucket the closed form's instance starts must equal
         the RRULE expander's occurrences date for date. *)
      match Translate.to_periodic ctx93 rule with
      | None -> check_bool (src ^ ": to_periodic none") true (classify rule <> "periodic")
      | Some (fine, pset) ->
        Alcotest.(check string) (src ^ ": to_periodic some") "periodic" (classify rule);
        check_bool (src ^ ": day granularity") true (Granularity.equal fine Granularity.Days);
        let hi = Civil.rata_die (d 1994 12 31) - Civil.rata_die epoch93 in
        let via_pset =
          Periodic.instances_in pset ~lo:0 ~hi
          |> List.map (fun (day, _len) -> Civil.add_days epoch93 day)
        in
        let via_rrule = Expand.occurrences rule ~dtstart:(d 1993 1 1) ~until:(d 1994 12 31) () in
        check_dates (src ^ ": closed form = expander") via_rrule via_pset)
    matrix

(* Occurrences are sorted and within bounds. *)
let rrule_gen =
  let open QCheck2.Gen in
  let weekday = int_range 1 7 in
  oneof
    [
      map (fun wd -> Rrule.make ~by_day:[ { Rrule.ordinal = None; weekday = wd } ] Rrule.Weekly) weekday;
      map2
        (fun o wd -> Rrule.make ~by_day:[ { Rrule.ordinal = Some o; weekday = wd } ] Rrule.Monthly)
        (oneofl [ 1; 2; 3; 4; -1 ])
        weekday;
      map (fun md -> Rrule.make ~by_month_day:[ md ] Rrule.Monthly)
        (oneofl [ 1; 15; 28; 31; -1 ]);
      map2 (fun m md -> Rrule.make ~by_month:[ m ] ~by_month_day:[ md ] Rrule.Yearly)
        (int_range 1 12) (int_range 1 28);
    ]

let prop_occurrences_sorted_in_bounds =
  QCheck2.Test.make ~name:"occurrences sorted, within [dtstart, until]" ~count:200 rrule_gen
    (fun rule ->
      let dtstart = d 1993 1 1 and until = d 1995 12 31 in
      let occ = Expand.occurrences rule ~dtstart ~until () in
      let rec sorted = function
        | a :: (b :: _ as rest) -> Civil.compare a b < 0 && sorted rest
        | _ -> true
      in
      sorted occ
      && List.for_all
           (fun x -> Civil.compare dtstart x <= 0 && Civil.compare x until <= 0)
           occ)

let prop_translated_equivalence =
  QCheck2.Test.make ~name:"rrule and translated algebra agree" ~count:60 rrule_gen
    (fun rule ->
      match Translate.to_expression rule with
      | None -> true
      | Some expr_src ->
        let via_rrule =
          Expand.occurrences rule ~dtstart:(d 1993 1 1) ~until:(d 1994 12 31) ()
        in
        let via_algebra = algebra_days expr_src in
        List.length via_rrule = List.length via_algebra
        && List.for_all2 Civil.equal via_rrule via_algebra)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "cal_rrule"
    [
      ( "parse",
        [
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "expand",
        [
          Alcotest.test_case "daily" `Quick test_expand_daily;
          Alcotest.test_case "weekly tuesdays" `Quick test_expand_weekly_tuesdays;
          Alcotest.test_case "third friday" `Quick test_expand_third_friday;
          Alcotest.test_case "last weekday" `Quick test_expand_last_weekday;
          Alcotest.test_case "month days" `Quick test_expand_month_days;
          Alcotest.test_case "yearly" `Quick test_expand_yearly;
          Alcotest.test_case "bysetpos" `Quick test_expand_setpos;
          Alcotest.test_case "dtstart filter" `Quick test_expand_dtstart_filter;
        ] );
      ( "translate",
        [
          Alcotest.test_case "algebra equivalence" `Quick test_translate_equivalence;
          Alcotest.test_case "untranslatable fragment" `Quick test_untranslatable;
          Alcotest.test_case "translatability matrix" `Quick test_translatability_matrix;
        ] );
      qsuite "props" [ prop_occurrences_sorted_in_bounds; prop_translated_equivalence ];
    ]
