(* Unit tests for the session-level materialization cache: LRU order,
   capacity-0 pass-through, dependency invalidation (including end-to-end
   through Env rebinding), and the hit/miss counters against a scripted
   access pattern. *)

open Cal_lang

let check = Alcotest.(check (list string))
let check_int = Alcotest.(check int)

let fresh ?(capacity = 3) () = Cal_cache.create ~capacity ()

let add c key v = Cal_cache.add c ~key ~deps:[] v

(* --- LRU mechanics ---------------------------------------------------- *)

let test_lru_eviction_order () =
  let c = fresh ~capacity:2 () in
  add c "a" 1;
  add c "b" 2;
  check "MRU first" [ "b"; "a" ] (Cal_cache.keys c);
  add c "c" 3;
  (* capacity 2: the least recently used ("a") is gone *)
  check "a evicted" [ "c"; "b" ] (Cal_cache.keys c);
  check_int "eviction counted" 1 (Cal_cache.stats c).Cal_cache.evictions;
  (* touching "b" promotes it, so the next insertion evicts "c" *)
  (match Cal_cache.find c "b" with
  | Some 2 -> ()
  | _ -> Alcotest.fail "expected hit on b");
  add c "d" 4;
  check "c evicted after b promoted" [ "d"; "b" ] (Cal_cache.keys c)

let test_replace_does_not_grow () =
  let c = fresh ~capacity:2 () in
  add c "a" 1;
  add c "a" 10;
  check_int "one entry" 1 (Cal_cache.length c);
  (match Cal_cache.find c "a" with
  | Some 10 -> ()
  | _ -> Alcotest.fail "replacement value visible");
  check_int "two insertions" 2 (Cal_cache.stats c).Cal_cache.insertions

let test_peek_does_not_promote () =
  let c = fresh ~capacity:2 () in
  add c "a" 1;
  add c "b" 2;
  (match Cal_cache.peek c "a" with
  | Some 1 -> ()
  | _ -> Alcotest.fail "peek sees a");
  let s = Cal_cache.stats c in
  check_int "peek counts no hit" 0 s.Cal_cache.hits;
  (* "a" was peeked, not promoted: still LRU, still first out *)
  add c "c" 3;
  check "a still evicted first" [ "c"; "b" ] (Cal_cache.keys c)

let test_capacity_zero_pass_through () =
  let c = fresh ~capacity:0 () in
  add c "a" 1;
  check_int "nothing stored" 0 (Cal_cache.length c);
  (match Cal_cache.find c "a" with
  | None -> ()
  | Some _ -> Alcotest.fail "capacity 0 must never hit");
  let s = Cal_cache.stats c in
  check_int "no hits counted" 0 s.Cal_cache.hits;
  check_int "no misses counted" 0 s.Cal_cache.misses;
  check_int "no insertions counted" 0 s.Cal_cache.insertions

let test_negative_capacity_rejected () =
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Cal_cache.create: negative capacity") (fun () ->
      ignore (Cal_cache.create ~capacity:(-1) ()))

let test_set_capacity_shrinks () =
  let c = fresh ~capacity:4 () in
  List.iter (fun (k, v) -> add c k v) [ ("a", 1); ("b", 2); ("c", 3); ("d", 4) ];
  Cal_cache.set_capacity c 2;
  check "LRU half evicted" [ "d"; "c" ] (Cal_cache.keys c);
  Cal_cache.set_capacity c 0;
  check_int "capacity 0 clears" 0 (Cal_cache.length c)

(* --- counters vs a scripted access pattern ---------------------------- *)

let test_counters_scripted () =
  let c = fresh ~capacity:2 () in
  let touch k =
    match Cal_cache.find c k with None -> add c k 0 | Some _ -> ()
  in
  (* a m, b m, a h, c m (evicts b), b m (evicts a), b h, b h *)
  List.iter touch [ "a"; "b"; "a"; "c"; "b"; "b"; "b" ];
  let s = Cal_cache.stats c in
  check_int "hits" 3 s.Cal_cache.hits;
  check_int "misses" 4 s.Cal_cache.misses;
  check_int "evictions" 2 s.Cal_cache.evictions;
  check_int "insertions" 4 s.Cal_cache.insertions;
  Alcotest.(check (float 1e-9)) "hit rate" (3. /. 7.) (Cal_cache.hit_rate c)

(* --- dependency invalidation ------------------------------------------ *)

let test_invalidate_dep () =
  let c = fresh ~capacity:8 () in
  Cal_cache.add c ~key:"k1" ~deps:[ "DAYS" ] 1;
  Cal_cache.add c ~key:"k2" ~deps:[ "DAYS"; "HOLIDAYS" ] 2;
  Cal_cache.add c ~key:"k3" ~deps:[ "WEEKS" ] 3;
  check_int "two dropped" 2 (Cal_cache.invalidate_dep c "DAYS");
  check "only k3 remains" [ "k3" ] (Cal_cache.keys c);
  check_int "invalidations counted" 2 (Cal_cache.stats c).Cal_cache.invalidations;
  check_int "no-op invalidation" 0 (Cal_cache.invalidate_dep c "DAYS")

(* --- end-to-end through the evaluator --------------------------------- *)

let make_ctx ?(cache_capacity = 64) () =
  let env = Env.create () in
  Env.define_stored env ~name:"HOLIDAYS" ~granularity:Granularity.Days
    (Interval_set.of_pairs [ (1, 1); (50, 52) ]);
  Context.create ~epoch:(Civil.make 1988 1 1)
    ~lifespan:(Civil.make 1988 1 1, Civil.make 1989 12 31)
    ~cache_capacity ~env ()

let parse s =
  match Parser.expr s with Ok e -> e | Error e -> Alcotest.fail e

let test_second_eval_hits () =
  let ctx = make_ctx () in
  let e = parse "[1]/DAYS:during:WEEKS" in
  let cal1, s1 = Interp.eval_expr_cached ctx e in
  Alcotest.(check bool) "first eval generates" true (s1.Interp.gen_calls > 0);
  let cal2, s2 = Interp.eval_expr_cached ctx e in
  Alcotest.(check bool) "calendars equal" true (Calendar.equal cal1 cal2);
  check_int "no generation on second eval" 0 s2.Interp.gen_calls;
  Alcotest.(check bool) "hit counted" true (s2.Interp.cache_hits > 0)

let test_subexpression_shared_across_exprs () =
  let ctx = make_ctx () in
  let _ = Interp.eval_expr_cached ctx (parse "[1]/DAYS:during:WEEKS") in
  (* Different top-level expression, same sub-expression granularities and
     default window: DAYS and WEEKS materializations are reused. *)
  let _, s = Interp.eval_expr_cached ctx (parse "[-1]/DAYS:during:WEEKS") in
  check_int "leaves generated once across expressions" 0 s.Interp.gen_calls;
  Alcotest.(check bool) "sub-expressions hit" true (s.Interp.cache_hits >= 1)

let test_env_rebind_invalidates () =
  let ctx = make_ctx () in
  let e = parse "HOLIDAYS + [1]/DAYS:during:MONTHS" in
  let cal1, _ = Interp.eval_expr_cached ctx e in
  let _, warm = Interp.eval_expr_cached ctx e in
  check_int "warm run fully cached" 0 warm.Interp.gen_calls;
  (* Rebind HOLIDAYS: every entry depending on it must be recomputed and
     reflect the new values. *)
  Env.define_stored ctx.Context.env ~name:"HOLIDAYS" ~granularity:Granularity.Days
    (Interval_set.of_pairs [ (100, 101) ]);
  let cal2, after = Interp.eval_expr_cached ctx e in
  Alcotest.(check bool) "stale value not served" false (Calendar.equal cal1 cal2);
  Alcotest.(check bool) "holiday entries recomputed" true
    (after.Interp.cache_misses > 0);
  Alcotest.(check bool) "invalidations recorded" true
    ((Cal_cache.stats ctx.Context.cache).Cal_cache.invalidations > 0);
  (* The DAYS/MONTHS-only sub-expression did not depend on HOLIDAYS and
     survived: no generate calls were needed. *)
  check_int "independent entries survive" 0 after.Interp.gen_calls

let test_today_uncacheable () =
  let env = Env.create () in
  let clock = Clock.create () in
  let ctx =
    Context.create ~epoch:(Civil.make 1988 1 1)
      ~lifespan:(Civil.make 1988 1 1, Civil.make 1989 12 31)
      ~clock ~cache_capacity:64 ~env ()
  in
  let e = parse "today" in
  let _, s1 = Interp.eval_expr_cached ctx e in
  let _, s2 = Interp.eval_expr_cached ctx e in
  check_int "clock-dependent exprs never cached" 0
    (s1.Interp.cache_misses + s2.Interp.cache_misses + s1.Interp.cache_hits
   + s2.Interp.cache_hits);
  check_int "nothing stored" 0 (Cal_cache.length ctx.Context.cache)

let test_capacity_zero_is_naive () =
  let ctx = make_ctx ~cache_capacity:0 () in
  let e = parse "[1]/DAYS:during:WEEKS" in
  let cal_n, sn = Interp.eval_expr_naive ctx e in
  let cal_c, sc = Interp.eval_expr_cached ctx e in
  Alcotest.(check bool) "same value" true (Calendar.equal cal_n cal_c);
  check_int "same generate calls" sn.Interp.gen_calls sc.Interp.gen_calls;
  check_int "no cache traffic" 0 (sc.Interp.cache_hits + sc.Interp.cache_misses)

let test_planned_shares_cache () =
  let ctx = make_ctx () in
  let e = parse "[1]/DAYS:during:WEEKS" in
  let _, s1 = Interp.eval_expr_planned ctx e in
  Alcotest.(check bool) "first planned run generates" true (s1.Interp.gen_calls > 0);
  let _, s2 = Interp.eval_expr_planned ctx e in
  check_int "plan reuses materializations" 0 s2.Interp.gen_calls;
  Alcotest.(check bool) "plan cache hits" true (s2.Interp.cache_hits > 0)

let () =
  Alcotest.run "cal_cache"
    [
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "replace in place" `Quick test_replace_does_not_grow;
          Alcotest.test_case "peek neutral" `Quick test_peek_does_not_promote;
          Alcotest.test_case "capacity 0 pass-through" `Quick test_capacity_zero_pass_through;
          Alcotest.test_case "negative capacity" `Quick test_negative_capacity_rejected;
          Alcotest.test_case "set_capacity shrinks" `Quick test_set_capacity_shrinks;
        ] );
      ( "counters",
        [
          Alcotest.test_case "scripted access pattern" `Quick test_counters_scripted;
          Alcotest.test_case "invalidate_dep" `Quick test_invalidate_dep;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "second eval hits" `Quick test_second_eval_hits;
          Alcotest.test_case "shared sub-expressions" `Quick test_subexpression_shared_across_exprs;
          Alcotest.test_case "env rebind invalidates" `Quick test_env_rebind_invalidates;
          Alcotest.test_case "today uncacheable" `Quick test_today_uncacheable;
          Alcotest.test_case "capacity 0 = naive" `Quick test_capacity_zero_is_naive;
          Alcotest.test_case "planned shares cache" `Quick test_planned_shares_cache;
        ] );
    ]
