(* Property-based differential tests: the three evaluation strategies
   (naive / planned / cached) must agree on random well-formed calendar
   expressions, canonicalization must preserve evaluation, the pretty
   printer must round-trip through the parser, and the interval-set
   algebra must match a reference set-of-chronons model. *)

open Cal_lang

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

(* ------------------------------------------------------------------ *)
(* A small world: a 2-year lifespan keeps day-granularity windows in the
   hundreds of chronons so hundreds of random evaluations stay fast. *)

let epoch = Civil.make 1988 1 1
let lifespan = (Civil.make 1988 1 1, Civil.make 1989 12 31)

let holiday_pairs = [ (1, 1); (46, 47); (359, 360) ]

let make_env () =
  let env = Env.create () in
  Env.define_stored env ~name:"HOLIDAYS" ~granularity:Granularity.Days
    (Interval_set.of_pairs holiday_pairs);
  (match
     Env.define_script env ~name:"TUESDAYS"
       ~source:"{ return ([3]/DAYS:during:WEEKS); }"
   with
  | Ok () -> ()
  | Error e -> failwith e);
  env

let make_ctx ?(cache_capacity = 0) () =
  Context.create ~epoch ~lifespan ~cache_capacity ~env:(make_env ()) ()

(* ------------------------------------------------------------------ *)
(* Random well-formed expressions.

   Constraints that keep every generated expression evaluable:
   - granularities DAYS and coarser only (finer ones explode the window);
   - literal endpoints are positive (chronon 0 does not exist) and
     ordered;
   - label selection only over YEARS (the only operand granularity it is
     defined for here), with a label inside the lifespan;
   - caloperate counts are positive. *)

let ident_gen =
  QCheck2.Gen.oneofl
    [ "DAYS"; "WEEKS"; "MONTHS"; "YEARS"; "HOLIDAYS"; "TUESDAYS"; "days"; "Weeks" ]

let lit_gen =
  QCheck2.Gen.(
    map
      (fun l -> Ast.Lit (List.map (fun (a, b) -> (min a b, max a b)) l))
      (list_size (int_range 1 4) (pair (int_range 1 300) (int_range 1 300))))

let atom_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun i -> Ast.Nth i) (oneofl [ 1; 2; 3; 5; -1; -2 ]);
        return Ast.Last;
        map2 (fun a b -> Ast.Range (min a b, max a b)) (int_range 1 4) (int_range 1 4);
      ])

let listop_gen = QCheck2.Gen.oneofl Listop.all

let expr_gen =
  QCheck2.Gen.(
    sized_size (int_range 0 5)
    @@ fix (fun self n ->
           let base = oneof [ map (fun n -> Ast.Ident n) ident_gen; lit_gen ] in
           if n <= 0 then base
           else
             oneof
               [
                 base;
                 map2 (fun a b -> Ast.Union (a, b)) (self (n / 2)) (self (n / 2));
                 map2 (fun a b -> Ast.Diff (a, b)) (self (n / 2)) (self (n / 2));
                 map3
                   (fun (strict, op) lhs rhs -> Ast.Foreach { strict; op; lhs; rhs })
                   (pair bool listop_gen) (self (n / 2)) (self (n / 2));
                 map2
                   (fun atoms inner -> Ast.Select (Ast.Index atoms, inner))
                   (list_size (int_range 1 3) atom_gen)
                   (self (n - 1));
                 map
                   (fun y -> Ast.Select (Ast.Label y, Ast.Ident "YEARS"))
                   (int_range 1988 1989);
                 map2
                   (fun counts arg -> Ast.Calop { counts; arg })
                   (list_size (int_range 1 2) (int_range 1 4))
                   (self (n - 1));
               ]))

let print_expr = Pretty.expr_to_string

(* ------------------------------------------------------------------ *)
(* Differential properties: all strategies agree.

   The cached context is shared across every generated case (and a second
   planned run goes through it too), so stale or colliding cache entries
   from earlier expressions would surface as a disagreement here. *)

let shared_cached_ctx = make_ctx ~cache_capacity:64 ()

(* Cached evaluation has naive semantics, so it must agree with naive
   {e exactly}. The planner deliberately over-generates at the horizon
   (its demands extend one pad past the lifespan so boundary-straddling
   units come out whole — see planner.ml), so planned results may carry
   extra whole units beyond the lifespan edge; inside the lifespan all
   strategies must coincide. *)
let strategies_agree =
  let plain = make_ctx () in
  QCheck2.Test.make ~name:"naive = planned = cached (200+ random exprs)" ~count:250
    ~print:print_expr expr_gen (fun e ->
      let fine = Gran.finest_of_expr plain.Context.env e in
      (* The lifespan in this expression's generation unit; every strategy
         windows in units of [fine]. *)
      let interior = Context.lifespan_in plain fine in
      let clip s = Interval_set.inter s (Interval_set.of_list [ interior ]) in
      let naive = Interp.eval_expr_naive plain e in
      let planned = Interp.eval_expr_planned plain e in
      let cached = Interp.eval_expr_cached shared_cached_ctx e in
      let planned_cached = Interp.eval_expr_planned shared_cached_ctx e in
      let v (cal, _) = Calendar.flatten cal in
      Interval_set.equal (v naive) (v cached)
      && Interval_set.equal (clip (v naive)) (clip (v planned))
      && Interval_set.equal (clip (v naive)) (clip (v planned_cached)))

let canon_preserves_eval =
  let plain = make_ctx () in
  QCheck2.Test.make ~name:"canon preserves naive evaluation" ~count:250
    ~print:print_expr expr_gen (fun e ->
      let fine = Gran.finest_of_expr plain.Context.env e in
      let window =
        Context.lifespan_in plain fine
      in
      let v e = Calendar.flatten (fst (Interp.eval_expr_naive plain ~window e)) in
      Interval_set.equal (v e) (v (Canon.canon e)))

let canon_key_stable =
  (* Canonicalization is idempotent and key-stable: a second pass changes
     nothing, so cache keys are well defined. *)
  QCheck2.Test.make ~name:"canon is idempotent" ~count:250 ~print:print_expr expr_gen
    (fun e ->
      let c = Canon.canon e in
      String.equal (Canon.to_string c) (Canon.to_string (Canon.canon c)))

let cached_never_generates_more =
  (* On a fresh cache the first evaluation populates, the second must hit:
     strictly fewer generate calls than uncached evaluation. *)
  QCheck2.Test.make ~name:"second cached eval never calls generate" ~count:100
    ~print:print_expr expr_gen (fun e ->
      let ctx = make_ctx ~cache_capacity:128 () in
      let _, s1 = Interp.eval_expr_cached ctx e in
      let _, s2 = Interp.eval_expr_cached ctx e in
      (* Only expressions that generated something and are cacheable are
         interesting; uncacheable ones must behave identically. *)
      if s1.Interp.cache_misses > 0 then
        s2.Interp.gen_calls = 0 && s2.Interp.cache_hits > 0
      else s2.Interp.gen_calls = s1.Interp.gen_calls)

(* ------------------------------------------------------------------ *)
(* Round-trip: parsing the pretty-printed form yields the same AST. *)

let roundtrip =
  QCheck2.Test.make ~name:"Parser.expr (Pretty.expr_to_string e) = e" ~count:400
    ~print:print_expr expr_gen (fun e ->
      match Parser.expr (Pretty.expr_to_string e) with
      | Ok e' -> Ast.equal_expr e e'
      | Error msg -> QCheck2.Test.fail_reportf "parse error: %s" msg)

(* ------------------------------------------------------------------ *)
(* Interval algebra vs the reference set-of-chronons model: membership
   in the interval-set result must match boolean set algebra, chronon by
   chronon, over a domain covering every generated endpoint. *)

let set_gen =
  QCheck2.Gen.(
    map
      (fun l ->
        Interval_set.of_pairs (List.map (fun (a, b) -> (min a b, max a b)) l))
      (list_size (int_range 0 6) (pair (int_range 1 60) (int_range 1 60))))

let domain = List.init 70 (fun i -> i + 1)

let mem s c = Interval_set.contains_chronon s c

(* The element-wise ops (the paper's calendar algebra) are set algebra on
   whole intervals; the pointwise ops are set algebra on chronons. Each is
   checked against its own reference model. *)
let algebra_matches_model =
  QCheck2.Test.make ~name:"pointwise union/inter/diff match chronon-set model"
    ~count:500
    QCheck2.Gen.(pair set_gen set_gen)
    (fun (a, b) ->
      List.for_all
        (fun c ->
          mem (Interval_set.pointwise_union a b) c = (mem a c || mem b c)
          && mem (Interval_set.pointwise_inter a b) c = (mem a c && mem b c)
          && mem (Interval_set.pointwise_diff a b) c = (mem a c && not (mem b c)))
        domain)

let elementwise_matches_model =
  QCheck2.Test.make ~name:"element-wise union/inter/diff match interval-set model"
    ~count:500
    QCheck2.Gen.(pair set_gen set_gen)
    (fun (a, b) ->
      let imem i s = Interval_set.mem i s in
      let every_interval_of sets p =
        List.for_all (fun s -> List.for_all p (Interval_set.to_list s)) sets
      in
      every_interval_of [ a; b ] (fun i ->
          imem i (Interval_set.union a b) = (imem i a || imem i b)
          && imem i (Interval_set.inter a b) = (imem i a && imem i b)
          && imem i (Interval_set.diff a b) = (imem i a && not (imem i b))))

let algebra_laws =
  QCheck2.Test.make ~name:"union is ACI, diff after union distributes" ~count:500
    QCheck2.Gen.(triple set_gen set_gen set_gen)
    (fun (a, b, c) ->
      let ( = ) = Interval_set.equal in
      Interval_set.union a b = Interval_set.union b a
      && Interval_set.union a (Interval_set.union b c)
         = Interval_set.union (Interval_set.union a b) c
      && Interval_set.union a a = a
      && Interval_set.diff (Interval_set.union a b) c
         = Interval_set.union (Interval_set.diff a c) (Interval_set.diff b c))

(* ------------------------------------------------------------------ *)
(* Array-backed Interval_set vs the retained list implementation: every
   public operation must agree on overlap-heavy random inputs (stride
   and width chosen so neighbours overlap, as weeks overlap months). *)

let overlap_pairs_gen =
  QCheck2.Gen.(
    list_size (int_range 0 40)
      (map (fun (lo, w) -> (lo, lo + w)) (pair (int_range 1 80) (int_range 0 20))))

let print_pairs ps =
  String.concat "," (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) ps)

let same a o = Interval_set.to_pairs a = Interval_set_list.to_pairs o

let oracle_accessors_agree =
  QCheck2.Test.make ~name:"array set = list oracle: accessors" ~count:500
    ~print:print_pairs overlap_pairs_gen (fun ps ->
      let a = Interval_set.of_pairs ps and o = Interval_set_list.of_pairs ps in
      let n = Interval_set.cardinal a in
      same a o
      && n = Interval_set_list.cardinal o
      && Interval_set.is_empty a = Interval_set_list.is_empty o
      && Interval_set.first a = Interval_set_list.first o
      && Interval_set.last a = Interval_set_list.last o
      && Interval_set.span a = Interval_set_list.span o
      && Interval_set.to_list a = Interval_set_list.to_list o
      && Array.to_list (Interval_set.to_array a) = Interval_set_list.to_list o
      && List.of_seq (Interval_set.to_seq a) = Interval_set_list.to_list o
      && List.for_all
           (fun i ->
             Interval_set.nth a i = Interval_set_list.nth o i
             && Interval_set.nth_from_end a i = Interval_set_list.nth_from_end o i)
           (List.init n (fun i -> i + 1))
      && List.for_all
           (fun c -> Interval_set.contains_chronon a c = Interval_set_list.contains_chronon o c)
           (List.init 110 (fun i -> i + 1))
      && List.for_all
           (fun iv -> Interval_set.mem iv a && Interval_set_list.mem iv o)
           (Interval_set.to_list a)
      && List.for_all
           (fun c ->
             Interval_set.first_start_geq a c
             = List.find_opt
                 (fun iv -> Chronon.compare (Interval.lo iv) c >= 0)
                 (Interval_set_list.to_list o))
           (List.init 12 (fun i -> (i * 10) + 1)))

let oracle_algebra_agree =
  QCheck2.Test.make ~name:"array set = list oracle: algebra & windowing" ~count:500
    ~print:(fun (p, q) -> print_pairs p ^ " / " ^ print_pairs q)
    QCheck2.Gen.(pair overlap_pairs_gen overlap_pairs_gen)
    (fun (pa, pb) ->
      let a = Interval_set.of_pairs pa and b = Interval_set.of_pairs pb in
      let oa = Interval_set_list.of_pairs pa and ob = Interval_set_list.of_pairs pb in
      let w = Interval.make 20 60 in
      let shift iv =
        Interval.make (Chronon.add (Interval.lo iv) 1) (Chronon.add (Interval.hi iv) 2)
      in
      let keep iv = Interval.lo iv mod 2 = 0 in
      same (Interval_set.union a b) (Interval_set_list.union oa ob)
      && same (Interval_set.diff a b) (Interval_set_list.diff oa ob)
      && same (Interval_set.inter a b) (Interval_set_list.inter oa ob)
      && Interval_set.equal a b = Interval_set_list.equal oa ob
      && same (Interval_set.coalesce a) (Interval_set_list.coalesce oa)
      && same (Interval_set.pointwise_union a b) (Interval_set_list.pointwise_union oa ob)
      && same (Interval_set.pointwise_inter a b) (Interval_set_list.pointwise_inter oa ob)
      && same (Interval_set.pointwise_diff a b) (Interval_set_list.pointwise_diff oa ob)
      && same (Interval_set.clip a w) (Interval_set_list.clip oa w)
      && same (Interval_set.restrict a w) (Interval_set_list.restrict oa w)
      && same (Interval_set.filter keep a) (Interval_set_list.filter keep oa)
      && same (Interval_set.map shift a) (Interval_set_list.map shift oa)
      && (match Interval_set_list.first ob with
         | Some iv -> same (Interval_set.add iv a) (Interval_set_list.add iv oa)
         | None -> true)
      && Interval_set.fold (fun acc iv -> iv :: acc) [] a
         = Interval_set_list.fold (fun acc iv -> iv :: acc) [] oa)

(* The streaming generation path agrees with materializing evaluation on
   every expression the streamability gate accepts: same flattened
   intervals inside the lifespan, chunk decomposition notwithstanding. *)
let stream_matches_materialize =
  let plain = make_ctx () in
  QCheck2.Test.make ~name:"stream_expr = naive flatten on streamable exprs" ~count:250
    ~print:print_expr expr_gen (fun e ->
      if not (Planner.streamable plain.Context.env e) then true
      else begin
        let fine = Gran.finest_of_expr plain.Context.env e in
        let interior = Context.lifespan_in plain fine in
        let lo_in iv =
          Chronon.compare (Interval.lo iv) (Interval.lo interior) >= 0
          && Chronon.compare (Interval.lo iv) (Interval.hi interior) <= 0
        in
        let streamed = Interp.stream_expr plain e |> Seq.filter lo_in |> List.of_seq in
        let materialized =
          fst (Interp.eval_expr_naive plain e)
          |> Calendar.flatten |> Interval_set.to_list |> List.filter lo_in
        in
        streamed = materialized
      end)

(* ------------------------------------------------------------------ *)
(* Probe windows near the representation edges. Earlier revisions only
   exercised windows inside the lifespan; closed-form periodic probes run
   over unbounded horizons, so window-local evaluation must stay
   consistent out to chronon offsets near max_int / lcm — the point where
   instants (offset x seconds-per-unit, lcm = the Gregorian cycle in fine
   units) approach overflow. The property: evaluating over a window and
   over a strictly larger window agrees on every unit deep inside the
   smaller one. Only window-local expressions qualify (the streamable /
   periodic fragments); caloperate and absolute selection are excluded
   because their meaning depends on the window origin by design. *)

let sec_ub = function
  | Granularity.Seconds -> 1
  | Granularity.Minutes -> 60
  | Granularity.Hours -> 3600
  | Granularity.Days -> 86400
  | Granularity.Weeks -> 604800
  | Granularity.Months -> 2678400
  | Granularity.Years -> 31622400
  | Granularity.Decades -> 316224000
  | Granularity.Centuries -> 3162240000

let far_window_consistency =
  let plain = make_ctx () in
  QCheck2.Test.make ~name:"window-restriction consistency near max_int/lcm edges" ~count:100
    ~print:print_expr expr_gen (fun e ->
      let env = plain.Context.env in
      if not (Planner.streamable env e || Periodic.translatable env e) then true
      else begin
        let fine = Gran.finest_of_expr env e in
        let pad = Planner.pad_for ~fine (Gran.grans_of_expr env e) in
        let margin = (3 * pad) + 16 in
        let width = (2 * margin) + 160 in
        (* Largest safe window base: instants stay below max_int / 2 so
           padded arithmetic cannot overflow. For day granularity this is
           within a factor of two of max_int / 146097. *)
        let cap = (max_int / sec_ub fine / 2) - (2 * width) in
        let check_at base =
          let wlo = base and whi = base + width in
          let small = Interval.make (Chronon.of_offset wlo) (Chronon.of_offset whi) in
          let big =
            Interval.make
              (Chronon.of_offset (wlo - margin - 8))
              (Chronon.of_offset (whi + margin + 8))
          in
          let v w = Calendar.flatten (fst (Interp.eval_expr_naive plain ~window:w e)) in
          let interior iv =
            Chronon.to_offset (Interval.lo iv) >= wlo + margin
            && Chronon.to_offset (Interval.hi iv) <= whi - margin
          in
          Interval_set.equal
            (Interval_set.filter interior (v small))
            (Interval_set.filter interior (v big))
        in
        List.for_all check_at [ cap; cap / 2; 1_000_000_007; min cap (max_int / 146097) ]
      end)

let calendar_union_aci =
  (* The cache-key soundness argument for flattening union spines. *)
  QCheck2.Test.make ~name:"Calendar.union is ACI up to Calendar.equal" ~count:300
    QCheck2.Gen.(triple set_gen set_gen set_gen)
    (fun (a, b, c) ->
      let ca = Calendar.leaf a and cb = Calendar.leaf b and cc = Calendar.leaf c in
      Calendar.equal (Calendar.union ca cb) (Calendar.union cb ca)
      && Calendar.equal
           (Calendar.union ca (Calendar.union cb cc))
           (Calendar.union (Calendar.union ca cb) cc)
      && Calendar.equal (Calendar.union ca ca) ca)

let () =
  Alcotest.run "cal_props"
    [
      qsuite "differential"
        [ strategies_agree; canon_preserves_eval; canon_key_stable; cached_never_generates_more ];
      qsuite "roundtrip" [ roundtrip ];
      qsuite "algebra"
        [ algebra_matches_model; elementwise_matches_model; algebra_laws; calendar_union_aci ];
      qsuite "oracle"
        [ oracle_accessors_agree; oracle_algebra_agree; stream_matches_materialize ];
      qsuite "far-windows" [ far_window_consistency ];
    ]
