(* Tests for the temporal rule system: the DBCRON daemon, next-fire
   computation and the rule manager (section 4 of the paper). *)

open Cal_lang
open Cal_db

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let epoch93 = Civil.make 1993 1 1
let day_instant d = (d - 1) * 86400 (* start instant of positive day chronon d *)

let make_setup ?probe_period ?probe_strategy ?shards ?pending () =
  let clock = Clock.create () in
  let env = Env.create () in
  let ctx =
    Context.create ~epoch:epoch93 ~lifespan:(Civil.make 1993 1 1, Civil.make 1997 12 31)
      ~clock ~env ()
  in
  let catalog = Catalog.create () in
  let mgr = Cal_rules.Manager.create ?probe_period ?probe_strategy ?shards ?pending ctx catalog in
  (ctx, catalog, mgr, clock)

let run mgr s =
  match Cal_rules.Manager.run_query mgr s with
  | Ok r -> r
  | Error e -> Alcotest.failf "query failed: %s (%s)" e s

(* ------------------------------------------------------------------ *)
(* Min-heap *)

let test_min_heap () =
  let h = Cal_rules.Min_heap.create () in
  List.iter (fun (p, v) -> Cal_rules.Min_heap.push h p v) [ (5, "e"); (1, "a"); (3, "c"); (2, "b") ];
  check_int "length" 4 (Cal_rules.Min_heap.length h);
  check_bool "peek min" true (Cal_rules.Min_heap.peek h = Some (1, "a"));
  let due = Cal_rules.Min_heap.pop_due h 3 in
  check_bool "pop_due in order" true (due = [ (1, "a"); (2, "b"); (3, "c") ]);
  check_int "left" 1 (Cal_rules.Min_heap.length h);
  check_bool "pop last" true (Cal_rules.Min_heap.pop h = Some (5, "e"));
  check_bool "empty pop" true (Cal_rules.Min_heap.pop h = None)

let prop_min_heap_sorted =
  QCheck2.Test.make ~name:"heap pops in sorted order" ~count:300
    QCheck2.Gen.(list_size (int_range 0 100) (int_range 0 1000))
    (fun prios ->
      let h = Cal_rules.Min_heap.create () in
      List.iter (fun p -> Cal_rules.Min_heap.push h p p) prios;
      let rec drain acc =
        match Cal_rules.Min_heap.pop h with
        | Some (p, _) -> drain (p :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort Int.compare prios)

(* ------------------------------------------------------------------ *)
(* DBCRON mechanics with a synthetic rule store *)

let test_dbcron_probe_and_fire () =
  (* Rules at instants 10, 150, 260; probe period 100. *)
  let store = ref [ (10, "a"); (150, "b"); (260, "c") ] in
  let loaded = ref [] in
  let load ~window_end =
    let due, rest = List.partition (fun (at, _) -> at < window_end) !store in
    store := rest;
    loaded := !loaded @ List.map snd due;
    due
  in
  let cron = Cal_rules.Dbcron.create ~probe_period:100 ~now:0 ~load () in
  check_bool "initial probe loaded a" true (!loaded = [ "a" ]);
  let fired = Cal_rules.Dbcron.step cron ~now:50 ~load in
  check_bool "a fired at 10" true (fired = [ (10, "a") ]);
  let fired = Cal_rules.Dbcron.step cron ~now:120 ~load in
  check_bool "nothing due at 120 (b loads at probe 100, fires 150)" true (fired = []);
  check_int "b loaded by probe at 100" 2 (List.length !loaded);
  let fired = Cal_rules.Dbcron.step cron ~now:400 ~load in
  check_bool "b then c fire in order" true (fired = [ (150, "b"); (260, "c") ]);
  let probes, _ = Cal_rules.Dbcron.stats cron in
  (* Probes at 0 (create), 100, 200, 300, 400. *)
  check_int "probe count" 5 probes

let test_dbcron_offer () =
  let load ~window_end:_ = [] in
  let cron = Cal_rules.Dbcron.create ~probe_period:100 ~now:0 ~load () in
  check_bool "inside window accepted" true (Cal_rules.Dbcron.offer cron 50 "x");
  check_bool "outside window rejected" false (Cal_rules.Dbcron.offer cron 150 "y");
  check_int "pending" 1 (Cal_rules.Dbcron.pending cron)

let test_dbcron_offer_boundary () =
  (* The probe window is half-open [last_probe, window_end): an entry at
     exactly window_end is rejected — but losslessly. Its RULE_TIME row
     stays put, the next probe's window [window_end, window_end + T)
     covers it, and step probes before firing, so it still fires at the
     exact boundary instant. *)
  let store = ref [ (100, "edge") ] in
  let load ~window_end =
    let due, rest = List.partition (fun (at, _) -> at < window_end) !store in
    store := rest;
    due
  in
  let cron = Cal_rules.Dbcron.create ~probe_period:100 ~now:0 ~load () in
  check_bool "at = window_end rejected" false (Cal_rules.Dbcron.offer cron 100 "edge");
  check_int "nothing pending" 0 (Cal_rules.Dbcron.pending cron);
  check_bool "backing row untouched" true (!store = [ (100, "edge") ]);
  let fired = Cal_rules.Dbcron.step cron ~now:100 ~load in
  check_bool "fires at the exact boundary instant" true (fired = [ (100, "edge") ])

let test_clock_regression_guard () =
  let ctx, _, mgr, _ = make_setup () in
  let expr =
    match Parser.expr "[2]/DAYS:during:WEEKS" with Ok e -> e | Error e -> Alcotest.failf "%s" e
  in
  (* An inverted occurrence window is a clock regression, not an empty
     answer. *)
  (match Cal_rules.Next_fire.occurrences ctx expr ~from_:(day_instant 5) ~until:(day_instant 2) with
  | _ -> Alcotest.fail "inverted window must raise"
  | exception Cal_rules.Next_fire.Clock_regression { now; target } ->
    check_int "now" (day_instant 5) now;
    check_int "target" (day_instant 2) target);
  check_bool "empty window still fine" true
    (Cal_rules.Next_fire.occurrences ctx expr ~from_:0 ~until:0 = []);
  (* The manager refuses to advance backwards, and the clock holds. *)
  Cal_rules.Manager.advance_days mgr 3;
  (match Cal_rules.Manager.advance_to mgr 86400 with
  | () -> Alcotest.fail "backwards advance must raise"
  | exception Cal_rules.Next_fire.Clock_regression { now; target } ->
    check_int "manager now" (3 * 86400) now;
    check_int "manager target" 86400 target);
  check_bool "same-instant advance is a no-op" true (Cal_rules.Manager.advance_to mgr (3 * 86400) = ())

(* ------------------------------------------------------------------ *)
(* Next-fire computation *)

let test_next_fire_tuesdays () =
  let ctx, _, _, _ = make_setup () in
  let expr =
    match Parser.expr "[2]/DAYS:during:WEEKS" with Ok e -> e | Error e -> Alcotest.failf "%s" e
  in
  (* Jan 1 1993 is a Friday; the next Tuesday is Jan 5 (day 5). *)
  (match Cal_rules.Next_fire.next ctx expr ~after:0 () with
  | Some at -> check_int "next tuesday instant" (day_instant 5) at
  | None -> Alcotest.fail "expected a next fire");
  (* From the middle of Tuesday Jan 5, the next is Jan 12. *)
  (match Cal_rules.Next_fire.next ctx expr ~after:(day_instant 5 + 3600) () with
  | Some at -> check_int "following tuesday" (day_instant 12) at
  | None -> Alcotest.fail "expected a next fire");
  let occ = Cal_rules.Next_fire.occurrences ctx expr ~from_:0 ~until:(day_instant 32) in
  Alcotest.(check (list int)) "all january tuesdays"
    [ day_instant 5; day_instant 12; day_instant 19; day_instant 26 ]
    occ

let test_next_fire_monthly () =
  let ctx, _, _, _ = make_setup () in
  (* Last day of every month. *)
  let expr =
    match Parser.expr "[n]/DAYS:during:MONTHS" with Ok e -> e | Error e -> Alcotest.failf "%s" e
  in
  match Cal_rules.Next_fire.next ctx expr ~after:0 () with
  | Some at -> check_int "jan 31" (day_instant 31) at
  | None -> Alcotest.fail "expected a next fire"

let test_next_fire_hourly () =
  let ctx, _, _, _ = make_setup () in
  (* The first minute of every hour: an intraday rule. *)
  let expr =
    match Parser.expr "[1]/MINUTES:during:HOURS" with
    | Ok e -> e
    | Error e -> Alcotest.failf "%s" e
  in
  let occ = Cal_rules.Next_fire.occurrences ctx expr ~from_:0 ~until:(4 * 3600) in
  Alcotest.(check (list int)) "hourly instants" [ 3600; 7200; 10800; 14400 ] occ

let test_next_fire_none_past_lifespan () =
  let ctx, _, _, _ = make_setup () in
  let expr =
    match Parser.expr "[2]/DAYS:during:WEEKS" with Ok e -> e | Error e -> Alcotest.failf "%s" e
  in
  let after = 10 * 366 * 86400 in
  (* The lifespan-bounded paths have nothing left after the 5-year
     lifespan ends. *)
  check_bool "materialize dormant" true
    (Cal_rules.Next_fire.next ctx expr ~after ~strategy:`Materialize () = None);
  check_bool "stream dormant" true
    (Cal_rules.Next_fire.next ctx expr ~after ~strategy:`Stream () = None);
  (* The expression is translatable, so the default [`Auto] resolves to
     the closed periodic form — unbounded horizon, never dormant — and
     the probe is exact arithmetic: the first Tuesday after [after]. *)
  check_bool "auto resolves periodic" true
    (Cal_rules.Next_fire.resolve ctx expr `Auto = `Periodic);
  (match Cal_rules.Next_fire.next ctx expr ~after () with
  | None -> Alcotest.fail "periodic probe must never go dormant"
  | Some at ->
    check_bool "fires strictly later" true (at > after);
    check_int "lands on a day boundary" 0 (at mod 86400);
    (* Same instant the lifespan-free occurrence scan reports. *)
    (match Cal_rules.Next_fire.occurrences ctx expr ~from_:after ~until:(at + (14 * 86400)) with
    | first :: _ -> check_int "agrees with occurrence scan" first at
    | [] -> Alcotest.fail "occurrence scan found nothing"))

(* ------------------------------------------------------------------ *)
(* Manager: time-based rules *)

let test_time_rule_every_tuesday () =
  let _, catalog, mgr, clock = make_setup () in
  ignore (run mgr "create table log (msg text, day int)");
  ignore
    (run mgr
       "define rule tuesdays on calendar \"[2]/DAYS:during:WEEKS\" do append log (msg = 'tick', day = 0)");
  (* RULE_INFO and RULE_TIME are populated. *)
  (match run mgr "retrieve (count(name)) from rule_info" with
  | Exec.Rows { rows = [ [| Value.Int 1 |] ]; _ } -> ()
  | _ -> Alcotest.fail "rule_info row");
  (match Cal_rules.Manager.next_fire mgr "tuesdays" with
  | Some at -> check_int "first fire = Jan 5" (day_instant 5) at
  | None -> Alcotest.fail "rule_time entry");
  (* Advance 4 weeks: Jan 5, 12, 19, 26 fire. *)
  Cal_rules.Manager.advance_days mgr 30;
  check_int "fired 4 times" 4 (Cal_rules.Manager.fire_count mgr "tuesdays");
  let firings = Cal_rules.Manager.firings mgr in
  Alcotest.(check (list int)) "fire instants"
    [ day_instant 5; day_instant 12; day_instant 19; day_instant 26 ]
    (List.map (fun f -> f.Cal_rules.Manager.at) firings);
  (match run mgr "retrieve (count(msg)) from log" with
  | Exec.Rows { rows = [ [| Value.Int 4 |] ]; _ } -> ()
  | _ -> Alcotest.fail "log rows");
  (* Clock advanced along the way. *)
  check_bool "clock at target" true (Clock.now clock = 30 * 86400);
  (* rule_time was re-pointed to the next Tuesday (Feb 2, day 33). *)
  (match Cal_rules.Manager.next_fire mgr "tuesdays" with
  | Some at -> check_int "next fire = Feb 2" (day_instant 33) at
  | None -> Alcotest.fail "expected next fire");
  ignore catalog

let test_time_rule_eval_plan_stored () =
  let _, _, mgr, _ = make_setup () in
  ignore (run mgr "create table log (msg text)");
  ignore
    (run mgr "define rule r on calendar \"[n]/DAYS:during:MONTHS\" do append log (msg = 'eom')");
  match run mgr "retrieve (eval_plan) from rule_info where name = 'r'" with
  | Exec.Rows { rows = [ [| Value.Text plan |] ]; _ } ->
    let contains hay needle =
      let n = String.length needle in
      let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    check_bool "plan mentions generate" true (contains plan "generate")
  | _ -> Alcotest.fail "expected eval plan"

let test_rule_drop () =
  let _, _, mgr, _ = make_setup () in
  ignore (run mgr "create table log (msg text)");
  ignore (run mgr "define rule t on calendar \"[2]/DAYS:during:WEEKS\" do append log (msg = 'x')");
  Cal_rules.Manager.advance_days mgr 7;
  let fired_before = Cal_rules.Manager.fire_count mgr "t" in
  check_bool "fired at least once" true (fired_before >= 1);
  ignore (run mgr "drop rule t");
  Cal_rules.Manager.advance_days mgr 30;
  (* No state left behind. *)
  (match run mgr "retrieve (count(name)) from rule_time" with
  | Exec.Rows { rows = [ [| Value.Int 0 |] ]; _ } -> ()
  | _ -> Alcotest.fail "rule_time cleaned");
  check_int "no more firings recorded" fired_before
    (List.length (Cal_rules.Manager.firings mgr))

let test_time_rule_alert () =
  let _, _, mgr, _ = make_setup () in
  ignore
    (run mgr
       "define rule a on calendar \"[n]/DAYS:during:MONTHS\" do retrieve (alert('END OF MONTH'))");
  Cal_rules.Manager.advance_days mgr 32;
  match Cal_rules.Manager.alerts mgr with
  | [ ("END OF MONTH", at) ] -> check_int "alert on Jan 31" (day_instant 31) at
  | l -> Alcotest.failf "unexpected alerts (%d)" (List.length l)

(* ------------------------------------------------------------------ *)
(* Manager: database-event rules *)

let test_event_rule_with_condition () =
  let _, _, mgr, _ = make_setup () in
  ignore (run mgr "create table stock (day chronon valid, price float)");
  ignore (run mgr "create table audit (price float)");
  ignore
    (run mgr
       "define rule watch on append to stock where new.price > 100.0 do append audit (price = new.price)");
  ignore (run mgr "append stock (day = @1, price = 99.0)");
  ignore (run mgr "append stock (day = @2, price = 101.0)");
  ignore (run mgr "append stock (day = @3, price = 150.0)");
  (match run mgr "retrieve (count(price)) from audit" with
  | Exec.Rows { rows = [ [| Value.Int 2 |] ]; _ } -> ()
  | _ -> Alcotest.fail "condition filtered appends");
  check_int "fire count" 2 (Cal_rules.Manager.fire_count mgr "watch")

let test_event_rule_on_delete_and_replace () =
  let _, _, mgr, _ = make_setup () in
  ignore (run mgr "create table t (a int)");
  ignore (run mgr "create table log (what text, v int)");
  ignore (run mgr "define rule d on delete to t do append log (what = 'del', v = current.a)");
  ignore (run mgr "define rule r on replace to t do append log (what = 'rep', v = new.a)");
  ignore (run mgr "append t (a = 1)");
  ignore (run mgr "append t (a = 2)");
  ignore (run mgr "replace t (a = 20) where a = 2");
  ignore (run mgr "delete t where a = 1");
  match run mgr "retrieve (what, v) from log" with
  | Exec.Rows { rows; _ } ->
    let got = List.map (fun r -> (r.(0), r.(1))) rows in
    check_bool "replace logged" true (List.mem (Value.Text "rep", Value.Int 20) got);
    check_bool "delete logged" true (List.mem (Value.Text "del", Value.Int 1) got)
  | _ -> Alcotest.fail "expected rows"

let test_rule_recursion_guard () =
  let _, _, mgr, _ = make_setup () in
  ignore (run mgr "create table t (a int)");
  ignore (run mgr "define rule loop on append to t do append t (a = new.a + 1)");
  match Cal_rules.Manager.run_query mgr "append t (a = 0)" with
  | Error _ -> ()
  | Ok _ -> (
    match run mgr "retrieve (count(a)) from t" with
    | Exec.Rows { rows = [ [| Value.Int n |] ]; _ } ->
      check_bool "bounded" true (n <= 16)
    | _ -> Alcotest.fail "expected count")

let test_many_time_rules () =
  (* Many staggered daily rules; each fires once per day. *)
  let _, _, mgr, _ = make_setup ~probe_period:(6 * 3600) () in
  ignore (run mgr "create table log (msg text)");
  for i = 1 to 20 do
    ignore
      (run mgr
         (Printf.sprintf
            "define rule r%d on calendar \"[%d]/DAYS:during:WEEKS\" do append log (msg = 'r%d')"
            i ((i mod 7) + 1) i))
  done;
  Cal_rules.Manager.advance_days mgr 28;
  (* Each rule targets one weekday, so each fires 4 times over 4 weeks. *)
  (match run mgr "retrieve (count(msg)) from log" with
  | Exec.Rows { rows = [ [| Value.Int n |] ]; _ } -> check_int "total firings" 80 n
  | _ -> Alcotest.fail "expected count");
  let probes, loaded = Cal_rules.Manager.dbcron_stats mgr in
  check_bool "probed regularly" true (probes >= 28 * 4);
  check_bool "loaded all firings" true (loaded >= 80)

(* DBCRON ordering property: whatever the probe period and stepping
   pattern, every stored trigger fires exactly once, in order. *)
let prop_dbcron_fires_all_in_order =
  QCheck2.Test.make ~name:"dbcron fires every trigger exactly once, in order" ~count:200
    QCheck2.Gen.(
      triple
        (list_size (int_range 0 40) (int_range 1 5000))
        (int_range 1 1000)
        (list_size (int_range 1 10) (int_range 1 2000)))
    (fun (instants, probe_period, steps) ->
      let entries = List.mapi (fun i at -> (at, i)) instants in
      let store = ref entries in
      let load ~window_end =
        let due, rest = List.partition (fun (at, _) -> at < window_end) !store in
        store := rest;
        due
      in
      let cron = Cal_rules.Dbcron.create ~probe_period ~now:0 ~load () in
      let fired = ref [] in
      let now = ref 0 in
      List.iter
        (fun step ->
          now := !now + step;
          fired := !fired @ Cal_rules.Dbcron.step cron ~now:!now ~load)
        steps;
      (* Flush to past the last instant. *)
      now := !now + 6000;
      fired := !fired @ Cal_rules.Dbcron.step cron ~now:!now ~load;
      let fired_ats = List.map fst !fired in
      let sorted = List.sort Int.compare (List.map fst entries) in
      fired_ats = List.sort Int.compare fired_ats
      && List.sort Int.compare fired_ats = sorted
      && List.length !fired = List.length entries)

(* ------------------------------------------------------------------ *)
(* Streaming vs materializing probe paths *)

(* Over a simulated year, a DBCRON driven by the streaming next-fire
   path must produce exactly the firings of the materializing one:
   same rules, same instants, same order. *)
let test_dbcron_stream_vs_materialize_year () =
  let specs =
    [
      ("tuesdays", "[2]/DAYS:during:WEEKS");
      ("fridays", "[5]/DAYS:during:WEEKS");
      ("month_end", "[n]/DAYS:during:MONTHS");
      ("quarterly", "[1]/DAYS:during:([3,6,9,12]/MONTHS:during:YEARS)");
      ("new_year", "[1]/DAYS:during:YEARS");
    ]
  in
  let run_year strategy =
    let _, _, mgr, _ = make_setup ~probe_strategy:strategy () in
    ignore (run mgr "create table log (msg text)");
    List.iter
      (fun (name, spec) ->
        ignore
          (run mgr
             (Printf.sprintf "define rule %s on calendar \"%s\" do append log (msg = '%s')" name
                spec name)))
      specs;
    Cal_rules.Manager.advance_days mgr 365;
    List.map
      (fun f -> (f.Cal_rules.Manager.rule, f.Cal_rules.Manager.at))
      (Cal_rules.Manager.firings mgr)
  in
  let materialized = run_year `Materialize in
  let streamed = run_year `Stream in
  (* 2 x ~52 weekly + 12 month ends + 4 quarter starts + Jan 1 1994. *)
  check_bool "a year of firings happened" true (List.length materialized > 100);
  check_int "same number of firings" (List.length materialized) (List.length streamed);
  check_bool "identical firing sequences" true (materialized = streamed)

(* Sharding DBCRON by calendar signature — and swapping the pending
   structure under it — must be invisible in every observable: over a
   simulated year, every (shards, pending) configuration produces the
   serial heap run's exact firing sequence, RULE_TIME loads, probe
   count, peak and fired total. *)
let test_sharded_year_identity () =
  let specs =
    [
      ("tuesdays", "[2]/DAYS:during:WEEKS");
      ("fridays", "[5]/DAYS:during:WEEKS");
      ("also_tuesdays", "[2]/DAYS:during:WEEKS");
      ("month_end", "[n]/DAYS:during:MONTHS");
      ("quarterly", "[1]/DAYS:during:([3,6,9,12]/MONTHS:during:YEARS)");
      ("new_year", "[1]/DAYS:during:YEARS");
    ]
  in
  let run_year ~shards ~pending =
    let _, _, mgr, _ = make_setup ~shards ~pending () in
    ignore (run mgr "create table log (msg text)");
    List.iter
      (fun (name, spec) ->
        ignore
          (run mgr
             (Printf.sprintf "define rule %s on calendar \"%s\" do append log (msg = '%s')" name
                spec name)))
      specs;
    Cal_rules.Manager.advance_days mgr 365;
    let firings =
      List.map
        (fun f -> (f.Cal_rules.Manager.rule, f.Cal_rules.Manager.at))
        (Cal_rules.Manager.firings mgr)
    in
    let rows =
      match run mgr "retrieve (count(msg)) from log" with
      | Exec.Rows { rows = [ [| Value.Int n |] ]; _ } -> n
      | _ -> Alcotest.fail "expected count"
    in
    (firings, rows, Cal_rules.Manager.dbcron_stats mgr,
     Cal_rules.Manager.dbcron_heap_peak mgr, Cal_rules.Manager.dbcron_fired mgr)
  in
  let (base_firings, _, _, _, _) as baseline = run_year ~shards:1 ~pending:`Heap in
  check_bool "a year of firings happened" true (List.length base_firings > 150);
  List.iter
    (fun (shards, pending, label) ->
      let got = run_year ~shards ~pending in
      check_bool (label ^ " identical to serial heap run") true (got = baseline))
    [
      (1, `Wheel, "1 shard, wheel");
      (2, `Wheel, "2 shards, wheel");
      (4, `Wheel, "4 shards, wheel");
      (4, `Heap, "4 shards, heap");
    ];
  (* Same-tick coalescing really engaged: two rules share the Tuesday
     signature and action shape, so their simultaneous firings batch. *)
  let _, _, mgr, _ = make_setup ~shards:4 () in
  ignore (run mgr "create table log (msg text)");
  List.iter
    (fun (name, spec) ->
      ignore
        (run mgr
           (Printf.sprintf "define rule %s on calendar \"%s\" do append log (msg = 'x')" name spec)))
    [ ("t1", "[2]/DAYS:during:WEEKS"); ("t2", "[2]/DAYS:during:WEEKS") ];
  Cal_rules.Manager.advance_days mgr 28;
  let batches, fired = Cal_rules.Manager.coalesce_stats mgr in
  check_bool "coalesced batches formed" true (batches >= 4);
  check_bool "coalesced firings cover both rules" true (fired >= 2 * batches)

(* The two Next_fire strategies agree probe by probe, including at the
   lifespan boundary where both must report [None]. *)
let test_next_fire_strategies_agree () =
  let ctx, _, _, _ = make_setup () in
  List.iter
    (fun src ->
      let expr =
        match Parser.expr src with Ok e -> e | Error e -> Alcotest.failf "%s" e
      in
      check_bool ("streamable: " ^ src) true (Planner.streamable ctx.Context.env expr);
      List.iter
        (fun after ->
          let m = Cal_rules.Next_fire.next ctx expr ~after ~strategy:`Materialize () in
          let s = Cal_rules.Next_fire.next ctx expr ~after ~strategy:`Stream () in
          check_bool (Printf.sprintf "%s after %d" src after) true (m = s))
        [ 0; day_instant 5 + 3600; day_instant 100; day_instant 364; day_instant 1825; day_instant 4000 ])
    [
      "[2]/DAYS:during:WEEKS";
      "[n]/DAYS:during:MONTHS";
      "[1]/DAYS:during:YEARS";
      "[1]/DAYS:during:([3,6,9,12]/MONTHS:during:YEARS)";
    ]

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "cal_rules"
    [
      ("min_heap", [ Alcotest.test_case "basics" `Quick test_min_heap ]);
      ( "dbcron",
        [
          Alcotest.test_case "probe and fire" `Quick test_dbcron_probe_and_fire;
          Alcotest.test_case "offer window" `Quick test_dbcron_offer;
          Alcotest.test_case "offer at window_end is lossless" `Quick test_dbcron_offer_boundary;
          Alcotest.test_case "clock regression guard" `Quick test_clock_regression_guard;
        ] );
      ( "next_fire",
        [
          Alcotest.test_case "tuesdays" `Quick test_next_fire_tuesdays;
          Alcotest.test_case "monthly" `Quick test_next_fire_monthly;
          Alcotest.test_case "hourly (intraday)" `Quick test_next_fire_hourly;
          Alcotest.test_case "past lifespan" `Quick test_next_fire_none_past_lifespan;
        ] );
      ( "time-rules",
        [
          Alcotest.test_case "every tuesday (fig 4)" `Quick test_time_rule_every_tuesday;
          Alcotest.test_case "eval plan stored" `Quick test_time_rule_eval_plan_stored;
          Alcotest.test_case "drop rule" `Quick test_rule_drop;
          Alcotest.test_case "alert action" `Quick test_time_rule_alert;
          Alcotest.test_case "many staggered rules" `Quick test_many_time_rules;
        ] );
      ( "event-rules",
        [
          Alcotest.test_case "condition on NEW" `Quick test_event_rule_with_condition;
          Alcotest.test_case "delete/replace events" `Quick test_event_rule_on_delete_and_replace;
          Alcotest.test_case "recursion guard" `Quick test_rule_recursion_guard;
        ] );
      ( "probe-strategy",
        [
          Alcotest.test_case "dbcron year: stream = materialize" `Quick
            test_dbcron_stream_vs_materialize_year;
          Alcotest.test_case "next-fire strategies agree" `Quick
            test_next_fire_strategies_agree;
        ] );
      ( "shards",
        [
          Alcotest.test_case "sharded year = serial year, wheel = heap" `Quick
            test_sharded_year_identity;
        ] );
      qsuite "heap-props" [ prop_min_heap_sorted ];
      qsuite "dbcron-props" [ prop_dbcron_fires_all_in_order ];
    ]
