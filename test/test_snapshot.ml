(* Snapshot isolation: O(1) copy-on-write freeze at every layer (heap,
   btree, table, catalog), independence of the live and frozen handles
   under mutation from either side, and the reader/writer interleaving
   property — every state a reader observes through the store equals
   some commit-group prefix of a serial oracle. *)

open Calrules
module Heap = Cal_db.Heap
module Btree = Cal_db.Btree
module Table = Cal_db.Table
module Schema = Cal_db.Schema
module Catalog = Cal_db.Catalog
module Value = Cal_db.Value
module Exec = Cal_db.Exec
module Store = Cal_server.Store
module Protocol = Cal_server.Protocol

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)
let epoch93 = Civil.make 1993 1 1
let lifespan93 = (Civil.make 1993 1 1, Civil.make 1999 12 31)
let session () = Session.create ~epoch:epoch93 ~lifespan:lifespan93 ()

let run s q =
  match Session.query s q with
  | Ok r -> r
  | Error e -> Alcotest.failf "query %S: %s" q e

(* ------------------------------------------------------------------ *)
(* Heap copy-on-write *)

(* Row-id ordered dump, so two heaps compare structurally. *)
let heap_dump h =
  Heap.fold h (fun acc rid tup -> (rid, Array.to_list tup) :: acc) []
  |> List.sort compare

let test_heap_cow_live_writes () =
  let h = Heap.create () in
  for i = 0 to 99 do
    ignore (Heap.insert h [| Value.Int i |])
  done;
  let snap = Heap.freeze h in
  let frozen = heap_dump snap in
  ignore (Heap.delete h 5);
  ignore (Heap.update h 7 [| Value.Int (-7) |]);
  for i = 100 to 299 do
    ignore (Heap.insert h [| Value.Int i |])
  done;
  check_int "live heap took the writes" 299 (Heap.count h);
  check_bool "snapshot unchanged by live writes" true (heap_dump snap = frozen);
  check_bool "live diverged" true (heap_dump h <> frozen)

let test_heap_cow_snapshot_writes () =
  let h = Heap.create () in
  for i = 0 to 49 do
    ignore (Heap.insert h [| Value.Int i |])
  done;
  let live = heap_dump h in
  let snap = Heap.freeze h in
  (* Both handles stay writable; writes through either copy first. *)
  ignore (Heap.delete snap 3);
  ignore (Heap.insert snap [| Value.Int 999 |]);
  check_bool "live unchanged by snapshot writes" true (heap_dump h = live);
  check_int "snapshot took its own writes" 50 (Heap.count snap)

(* ------------------------------------------------------------------ *)
(* Btree copy-on-write *)

let test_btree_cow () =
  let b = Btree.create () in
  for i = 0 to 199 do
    Btree.insert b (Value.Int (i mod 50)) i
  done;
  let snap = Btree.freeze b in
  let frozen_keys = Btree.keys snap in
  let frozen_hits = Btree.find snap (Value.Int 7) in
  for i = 0 to 49 do
    ignore (Btree.remove b (Value.Int i) i)
  done;
  for i = 500 to 599 do
    Btree.insert b (Value.Int i) i
  done;
  Btree.check_invariants b;
  Btree.check_invariants snap;
  check_bool "snapshot keys unchanged" true (Btree.keys snap = frozen_keys);
  check_bool "snapshot postings unchanged" true (Btree.find snap (Value.Int 7) = frozen_hits);
  check_bool "live diverged" true (Btree.keys b <> frozen_keys);
  (* And the reverse direction: the frozen handle is writable too. *)
  let live_keys = Btree.keys b in
  Btree.insert snap (Value.Int 12345) 0;
  Btree.check_invariants snap;
  check_bool "live unchanged by snapshot write" true (Btree.keys b = live_keys)

(* ------------------------------------------------------------------ *)
(* Table and catalog freeze *)

let trades_schema name =
  Schema.make ~table:name
    [
      { Schema.name = "id"; ty = Schema.TInt; valid_time = false };
      { Schema.name = "qty"; ty = Schema.TInt; valid_time = false };
    ]

let test_table_freeze_with_index () =
  let t = Table.create (trades_schema "trades") in
  Table.create_index t "id";
  for i = 0 to 499 do
    ignore (Table.insert t [| Value.Int i; Value.Int (i * 10) |])
  done;
  let snap = Table.freeze t in
  let hits = Table.index_lookup snap "id" (Value.Int 42) in
  ignore (Table.insert t [| Value.Int 42; Value.Int 0 |]);
  ignore (Table.delete t 1);
  check_int "snapshot row count unchanged" 500 (Table.count snap);
  check_bool "snapshot index unchanged" true
    (Table.index_lookup snap "id" (Value.Int 42) = hits);
  check_int "live took the writes" 500 (Table.count t);
  check_bool "live index sees the new row" true
    (match Table.index_lookup t "id" (Value.Int 42) with
    | Some l -> List.length l = 2
    | None -> false)

let test_catalog_freeze_cached_and_epoch () =
  let c = Catalog.create () in
  let t = Catalog.create_table c (trades_schema "trades") in
  ignore (Table.insert t [| Value.Int 1; Value.Int 10 |]);
  let s1 = Catalog.freeze c in
  let e1 = Catalog.epoch c in
  let s2 = Catalog.freeze c in
  check_bool "idle catalog: repeated freeze returns the cached snapshot" true (s1 == s2);
  check_int "no epoch bump without writes" e1 (Catalog.epoch c);
  ignore (Table.insert t [| Value.Int 2; Value.Int 20 |]);
  let s3 = Catalog.freeze c in
  check_bool "write invalidates the cache" true (not (s3 == s1));
  check_int "fresh snapshot bumps the epoch" (e1 + 1) (Catalog.epoch c);
  check_int "old snapshot still at its row count" 1 (Table.count (Catalog.table s1 "trades"));
  check_int "new snapshot sees the write" 2 (Table.count (Catalog.table s3 "trades"))

(* The acceptance criterion: freeze is O(1)-ish — copying chunk
   directories and stamping roots, never rows. Freezing a 30k-row table
   must allocate far less than any row copy would (the rows alone are
   ~90k words). *)
let test_freeze_allocation_bound () =
  let c = Catalog.create () in
  let t = Catalog.create_table c (trades_schema "trades") in
  for i = 0 to 29_999 do
    ignore (Table.insert t [| Value.Int i; Value.Int (i * 3) |])
  done;
  Gc.full_major ();
  let before = Gc.minor_words () in
  let snap = Catalog.freeze c in
  let allocated = Gc.minor_words () -. before in
  check_int "snapshot is complete" 30_000 (Table.count (Catalog.table snap "trades"));
  if allocated > 50_000.0 then
    Alcotest.failf "freeze of a 30k-row table allocated %.0f words (O(1) bound is 50k)"
      allocated;
  (* Cached re-freeze allocates nothing to speak of. *)
  let before = Gc.minor_words () in
  ignore (Catalog.freeze c);
  let reallocated = Gc.minor_words () -. before in
  if reallocated > 1_000.0 then
    Alcotest.failf "cached re-freeze allocated %.0f words" reallocated

(* ------------------------------------------------------------------ *)
(* Differential COW properties *)

let heap_ops_gen =
  QCheck2.Gen.(
    pair
      (list_size (1 -- 40) (0 -- 99))
      (list_size (0 -- 30) (0 -- 2)))

let print_heap_case ((init, ops) : int list * int list) =
  Printf.sprintf "init=[%s] ops=[%s]"
    (String.concat ";" (List.map string_of_int init))
    (String.concat ";" (List.map string_of_int ops))

(* Mutating either handle never changes the other's contents. *)
let heap_cow_prop (init, ops) =
  let h = Heap.create () in
  List.iter (fun n -> ignore (Heap.insert h [| Value.Int n |])) init;
  let snap = Heap.freeze h in
  let frozen = heap_dump snap in
  let hw = Heap.high_water h in
  List.iteri
    (fun i op ->
      match op with
      | 0 -> ignore (Heap.insert h [| Value.Int (1000 + i) |])
      | 1 -> ignore (Heap.delete h (i mod max 1 hw))
      | _ -> ignore (Heap.update h (i mod max 1 hw) [| Value.Int (-i) |]))
    ops;
  let snap_survived = heap_dump snap = frozen in
  let live_after = heap_dump h in
  (* Same op stream through the snapshot handle: live must not move. *)
  List.iteri
    (fun i op ->
      match op with
      | 0 -> ignore (Heap.insert snap [| Value.Int (2000 + i) |])
      | 1 -> ignore (Heap.delete snap (i mod max 1 hw))
      | _ -> ignore (Heap.update snap (i mod max 1 hw) [| Value.Int i |]))
    ops;
  snap_survived && heap_dump h = live_after

let btree_cow_prop (init, ops) =
  let b = Btree.create () in
  List.iter (fun k -> Btree.insert b (Value.Int k) k) init;
  let snap = Btree.freeze b in
  let frozen = Btree.keys snap in
  List.iteri
    (fun i op ->
      match op with
      | 0 -> Btree.insert b (Value.Int (100 + i)) i
      | 1 -> ignore (Btree.remove b (Value.Int (i mod 100)) (i mod 100))
      | _ -> Btree.insert b (Value.Int (i mod 100)) (500 + i))
    ops;
  Btree.check_invariants b;
  Btree.check_invariants snap;
  Btree.keys snap = frozen

let cow_differential_tests =
  [
    QCheck2.Test.make ~name:"heap: handles are independent after freeze" ~count:120
      ~print:print_heap_case heap_ops_gen heap_cow_prop;
    QCheck2.Test.make ~name:"btree: snapshot keys survive live mutation" ~count:120
      ~print:print_heap_case heap_ops_gen btree_cow_prop;
  ]

(* ------------------------------------------------------------------ *)
(* Reader/writer interleaving = commit-group prefixes (satellite 3) *)

let render_read = function
  | Ok r -> String.concat "\n" (Protocol.render_result r)
  | Error e -> Alcotest.failf "reader query failed: %s" e

(* Serial oracle: apply the same batches on a plain session, recording
   after every commit group the catalog digest and the reader query's
   rendered answer at that prefix. *)
let oracle_prefixes batches query =
  let oracle = session () in
  ignore (run oracle "create table t (n int)");
  let state () =
    (Store.catalog_digest oracle.Session.catalog, render_read (Session.query oracle query))
  in
  let states = ref [ state () ] in
  List.iter
    (fun batch ->
      ignore
        (Session.batch oracle (fun () ->
             List.map (fun q -> Session.query oracle q) batch));
      states := state () :: !states)
    batches;
  List.rev !states

let batch_stmts values =
  List.map (fun n -> Printf.sprintf "append t (n = %d)" n) values

let interleave_gen =
  QCheck2.Gen.(
    pair
      (list_size (1 -- 6) (list_size (1 -- 4) (0 -- 99)))
      (list_size (0 -- 7) (0 -- 2)))

let print_interleave (batches, gaps) =
  Printf.sprintf "batches=[%s] gaps=[%s]"
    (String.concat ";"
       (List.map (fun b -> String.concat "," (List.map string_of_int b)) batches))
    (String.concat ";" (List.map string_of_int gaps))

(* Any interleaving of reader queries and writer commit groups: every
   reader observation (digest + query answer, both off one snapshot)
   must equal the oracle's state at some commit-group prefix — and the
   digest and the answer must agree on WHICH prefix. *)
let interleave_prop (batches, gaps) =
  let query = "retrieve (t.n) from t" in
  let prefixes = oracle_prefixes (List.map batch_stmts batches) query in
  let s = session () in
  let store = Store.of_session s in
  ignore (Store.write store [ Store.Query "create table t (n int)" ]);
  let observe () =
    let snap = Store.snapshot store in
    let d = Store.catalog_digest snap in
    let r = render_read (Store.read_on store snap query) in
    match List.find_opt (fun (pd, _) -> pd = d) prefixes with
    | None -> false
    | Some (_, pr) -> pr = r
  in
  let gap i = match List.nth_opt gaps i with Some g -> g | None -> 1 in
  let ok = ref true in
  List.iteri
    (fun i batch ->
      for _ = 1 to gap i do
        ok := !ok && observe ()
      done;
      ignore (Store.write store (List.map (fun q -> Store.Query q) (batch_stmts batch))))
    batches;
  for _ = 0 to 1 do
    ok := !ok && observe ()
  done;
  !ok

let interleaving_tests =
  [
    QCheck2.Test.make ~name:"reader observations = commit-group prefixes" ~count:40
      ~print:print_interleave interleave_gen interleave_prop;
  ]

(* Same property with real concurrency: reader threads hammer the
   published snapshot while the writer applies commit groups. Every
   observation must be a prefix state, and the digest must match the
   query answer taken off the same snapshot. *)
let test_concurrent_readers_see_prefixes () =
  let n_batches = 60 in
  let batch i = List.init 3 (fun j -> (i * 3) + j) in
  let query = "retrieve (t.n) from t" in
  let prefixes = oracle_prefixes (List.init n_batches (fun i -> batch_stmts (batch i))) query in
  let expected = Hashtbl.create 64 in
  List.iter (fun (d, r) -> Hashtbl.replace expected d r) prefixes;
  let s = session () in
  let store = Store.of_session s in
  ignore (Store.write store [ Store.Query "create table t (n int)" ]);
  let stop = Atomic.make false in
  let results = Array.make 2 [] in
  let reader i () =
    (* At least one observation each, even if the writer wins the race. *)
    let rec loop seen =
      let snap = Store.snapshot store in
      let d = Store.catalog_digest snap in
      let r = render_read (Store.read_on store snap query) in
      let seen = (d, r) :: seen in
      if Atomic.get stop then seen else loop seen
    in
    results.(i) <- loop []
  in
  let readers = List.init 2 (fun i -> Thread.create (reader i) ()) in
  for i = 0 to n_batches - 1 do
    ignore (Store.write store (List.map (fun q -> Store.Query q) (batch_stmts (batch i))));
    Thread.yield ()
  done;
  Atomic.set stop true;
  List.iter Thread.join readers;
  let observations = results.(0) @ results.(1) in
  check_bool "readers made observations" true (observations <> []);
  List.iter
    (fun (d, r) ->
      match Hashtbl.find_opt expected d with
      | None -> Alcotest.fail "reader observed a non-prefix state"
      | Some pr ->
        if pr <> r then Alcotest.fail "digest and query answer disagree on the prefix")
    observations;
  (* publish-per-group: setup freeze + create-table group + one epoch
     per batch. *)
  check_int "epoch counts commit groups" (n_batches + 2) (Store.epoch store)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "snapshot"
    [
      ( "cow",
        [
          Alcotest.test_case "heap: live writes invisible to snapshot" `Quick
            test_heap_cow_live_writes;
          Alcotest.test_case "heap: snapshot writes invisible to live" `Quick
            test_heap_cow_snapshot_writes;
          Alcotest.test_case "btree: both directions" `Quick test_btree_cow;
          Alcotest.test_case "table: rows and indexes" `Quick test_table_freeze_with_index;
          Alcotest.test_case "catalog: cache and epoch" `Quick
            test_catalog_freeze_cached_and_epoch;
          Alcotest.test_case "freeze is O(1): allocation bound" `Quick
            test_freeze_allocation_bound;
        ] );
      qsuite "cow-differential" cow_differential_tests;
      qsuite "interleaving" interleaving_tests;
      ( "concurrent",
        [
          Alcotest.test_case "threaded readers observe only prefixes" `Quick
            test_concurrent_readers_see_prefixes;
        ] );
    ]
