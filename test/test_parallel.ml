(* The multicore execution layer: the domain pool itself, bulk heap
   loading, and the determinism contracts — parallel DBCRON probes and
   partitioned scans must be bit-identical to their serial oracles at
   every domain count. *)

open Cal_db
module Pool = Cal_parallel.Pool

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)
let epoch93 = Civil.make 1993 1 1

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_map () =
  let pool = Pool.create ~domains:4 () in
  check_int "size" 4 (Pool.size pool);
  let arr = Array.init 1000 (fun i -> i) in
  let doubled = Pool.parallel_map pool (fun x -> 2 * x) arr in
  check_bool "parallel_map = Array.map" true (doubled = Array.map (fun x -> 2 * x) arr);
  let chunks = Pool.map_chunks pool ~n:10 (fun ~lo ~hi -> (lo, hi)) in
  let covered =
    Array.to_list chunks |> List.concat_map (fun (lo, hi) -> List.init (hi - lo) (( + ) lo))
  in
  check_bool "chunks cover [0,10) in order" true (covered = List.init 10 Fun.id);
  check_bool "empty range" true (Pool.map_chunks pool ~n:0 (fun ~lo:_ ~hi:_ -> ()) = [||]);
  Pool.shutdown pool

let test_pool_exception () =
  let pool = Pool.create ~domains:4 () in
  let raised =
    try
      ignore
        (Pool.map_chunks pool ~n:8 (fun ~lo ~hi:_ ->
             if lo >= 0 then failwith (string_of_int lo) else ()));
      "none"
    with Failure m -> m
  in
  (* Every chunk fails; the serial (lowest-index) failure must win. *)
  check_bool "lowest chunk's exception wins" true (raised = "0");
  (* The pool survives a failed dispatch. *)
  let ok = Pool.parallel_map pool (fun x -> x + 1) [| 1; 2; 3 |] in
  check_bool "pool usable after exception" true (ok = [| 2; 3; 4 |]);
  Pool.shutdown pool

let test_pool_reentrant () =
  let pool = Pool.create ~domains:2 () in
  (* A parallel call from inside a chunk must degrade to serial, not
     deadlock. *)
  let nested =
    Pool.map_chunks pool ~n:2 (fun ~lo ~hi:_ ->
        Array.length (Pool.map_chunks pool ~n:4 (fun ~lo:l ~hi:h -> (lo, l, h))))
  in
  check_bool "nested dispatch serialises" true (Array.for_all (fun n -> n >= 1) nested);
  Pool.shutdown pool

let test_pool_domains_cap () =
  let pool = Pool.create ~domains:4 () in
  let chunks = Pool.map_chunks ~domains:2 pool ~n:100 (fun ~lo ~hi -> (lo, hi)) in
  check_bool "?domains caps chunk count" true (Array.length chunks <= 2);
  let one = Pool.map_chunks ~domains:1 pool ~n:100 (fun ~lo ~hi -> (lo, hi)) in
  check_bool "domains:1 is one serial chunk" true (one = [| (0, 100) |]);
  Pool.shutdown pool;
  (* After shutdown, dispatch degrades to serial rather than failing. *)
  let after = Pool.parallel_map pool (fun x -> x * x) [| 1; 2; 3 |] in
  check_bool "post-shutdown fallback" true (after = [| 1; 4; 9 |])

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~domains:3 () in
  ignore (Pool.parallel_map pool (fun x -> x) [| 1 |]);
  Pool.shutdown pool;
  (* A second shutdown is a no-op, not a crash — recovery paths tear the
     session down without tracking whether the pool already stopped. *)
  Pool.shutdown pool;
  let arr = Array.init 100 (fun i -> i) in
  check_bool "parallel_map serial fallback after double shutdown" true
    (Pool.parallel_map pool (fun x -> 3 * x) arr = Array.map (fun x -> 3 * x) arr);
  let chunks = Pool.map_chunks pool ~n:10 (fun ~lo ~hi -> (lo, hi)) in
  let covered =
    Array.to_list chunks |> List.concat_map (fun (lo, hi) -> List.init (hi - lo) (( + ) lo))
  in
  check_bool "map_chunks serial fallback covers the range in order" true
    (covered = List.init 10 Fun.id);
  (* And shutting down yet again after post-shutdown use still holds. *)
  Pool.shutdown pool

(* ------------------------------------------------------------------ *)
(* Min_heap bulk load *)

let drain h =
  let rec go acc =
    match Cal_rules.Min_heap.pop h with Some pv -> go (pv :: acc) | None -> List.rev acc
  in
  go []

let prop_heap_bulk_load =
  QCheck2.Test.make ~name:"of_list pops like per-entry push (incl. ties)" ~count:500
    QCheck2.Gen.(list_size (int_range 0 200) (pair (int_range 0 20) (int_range 0 1000)))
    (fun entries ->
      let pushed = Cal_rules.Min_heap.create () in
      List.iter (fun (p, v) -> Cal_rules.Min_heap.push pushed p v) entries;
      let bulk = Cal_rules.Min_heap.of_list entries in
      drain pushed = drain bulk)

let prop_heap_add_list_mixed =
  QCheck2.Test.make ~name:"add_list after pushes = pushing everything" ~count:500
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 50) (pair (int_range 0 10) small_int))
        (list_size (int_range 0 150) (pair (int_range 0 10) small_int)))
    (fun (first, second) ->
      let incremental = Cal_rules.Min_heap.create () in
      List.iter (fun (p, v) -> Cal_rules.Min_heap.push incremental p v) (first @ second);
      let bulk = Cal_rules.Min_heap.create () in
      List.iter (fun (p, v) -> Cal_rules.Min_heap.push bulk p v) first;
      ignore (Cal_rules.Min_heap.add_list bulk second : int);
      drain incremental = drain bulk)

(* ------------------------------------------------------------------ *)
(* Parallel DBCRON probe = serial probe *)

let rule_specs =
  [|
    "[1]/DAYS:during:WEEKS";
    "[2]/DAYS:during:WEEKS";
    "[5]/DAYS:during:WEEKS";
    "[1]/DAYS:during:MONTHS";
    "[10]/DAYS:during:MONTHS";
    "[15]/DAYS:during:MONTHS";
    "[3]/DAYS:during:WEEKS + [20]/DAYS:during:MONTHS";
    "[1]/DAYS:during:([3,6,9,12]/MONTHS:during:YEARS)";
  |]

(* One DBCRON run: [nrules] rules drawn from [rule_specs] by index,
   advanced [days] simulated days at [domains] lanes. Returns everything
   the determinism contract covers: the firing log (names and instants,
   in order), the RULE_TIME table contents, and the dbcron counters. *)
let probe_run ~domains ~days spec_idxs =
  let s =
    Calrules.Session.create ~epoch:epoch93
      ~lifespan:(Civil.make 1993 1 1, Civil.make 1994 12 31)
      ~cache_capacity:64 ~domains ()
  in
  List.iteri
    (fun i k ->
      match
        Calrules.Session.query s
          (Printf.sprintf "define rule r%d on calendar \"%s\" do retrieve (1)" i
             rule_specs.(k mod Array.length rule_specs))
      with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "define rule: %s" e)
    spec_idxs;
  Calrules.Session.advance_days s days;
  let firings =
    List.map
      (fun f -> (f.Cal_rules.Manager.rule, f.Cal_rules.Manager.at))
      (Calrules.Session.firings s)
  in
  let rule_time =
    match Calrules.Session.query s "retrieve (name, next_fire) from rule_time" with
    | Ok (Exec.Rows { rows; _ }) ->
      List.map (fun r -> (Value.to_string r.(0), Value.to_string r.(1))) rows
    | _ -> Alcotest.fail "rule_time query failed"
  in
  (firings, rule_time, Cal_rules.Manager.dbcron_stats s.Calrules.Session.manager)

let prop_parallel_probe_deterministic =
  QCheck2.Test.make ~name:"parallel DBCRON probe = serial (1/2/4 domains)" ~count:12
    QCheck2.Gen.(
      pair (list_size (int_range 1 12) (int_range 0 100)) (int_range 1 20))
    (fun (spec_idxs, days) ->
      let serial = probe_run ~domains:1 ~days spec_idxs in
      serial = probe_run ~domains:2 ~days spec_idxs
      && serial = probe_run ~domains:4 ~days spec_idxs)

(* A directed case large enough that every probe actually batches in
   parallel (the qcheck sizes keep runtime down but can fall below the
   2-rule batching floor). *)
let test_parallel_probe_batches () =
  let spec_idxs = List.init 64 Fun.id in
  let f1, rt1, ds1 = probe_run ~domains:1 ~days:30 spec_idxs in
  let f4, rt4, ds4 = probe_run ~domains:4 ~days:30 spec_idxs in
  check_bool "firings identical" true (f1 = f4);
  check_bool "rule_time identical" true (rt1 = rt4);
  check_bool "dbcron stats identical" true (ds1 = ds4);
  check_bool "fired a lot" true (List.length f1 > 100)

let test_session_reports_domains () =
  let s =
    Calrules.Session.create ~epoch:epoch93
      ~lifespan:(Civil.make 1993 1 1, Civil.make 1993 12 31)
      ~domains:3 ()
  in
  check_int "manager domains" 3 (Cal_rules.Manager.domains s.Calrules.Session.manager);
  let spec_idxs = List.init 8 Fun.id in
  let s4 =
    Calrules.Session.create ~epoch:epoch93
      ~lifespan:(Civil.make 1993 1 1, Civil.make 1994 12 31)
      ~domains:4 ()
  in
  List.iteri
    (fun i k ->
      ignore
        (Calrules.Session.query s4
           (Printf.sprintf "define rule r%d on calendar \"%s\" do retrieve (1)" i
              rule_specs.(k mod Array.length rule_specs))))
    spec_idxs;
  Calrules.Session.advance_days s4 21;
  let batches, rules = Cal_rules.Manager.parallel_stats s4.Calrules.Session.manager in
  check_bool "parallel batches ran" true (batches > 0 && rules > 0)

(* ------------------------------------------------------------------ *)
(* Partitioned scan = serial scan *)

(* Random pure-arithmetic where clauses over (day chronon, qty int,
   price float) — the shapes the planner marks partitionable. *)
let where_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun k -> Printf.sprintf "qty > %d" k) (int_range 0 200);
        map (fun k -> Printf.sprintf "qty * 3 - %d > qty + 7" k) (int_range 0 300);
        map
          (fun (a, b) -> Printf.sprintf "qty >= %d and not (qty = %d)" a b)
          (pair (int_range 0 150) (int_range 0 150));
        map
          (fun k -> Printf.sprintf "price * 2.0 > %d.5 and qty - 1 < %d" k (k / 2))
          (int_range 0 180);
        return "qty = qty";
      ])

let scan_rows catalog ~domains q =
  match Exec.run catalog ~stats:(Exec.fresh_stats ()) ~domains q with
  | Exec.Rows { rows; _ } -> rows
  | _ -> Alcotest.fail "expected rows"

let prop_parallel_scan_deterministic =
  QCheck2.Test.make ~name:"partitioned scan = serial scan (1/2/4 domains)" ~count:40
    QCheck2.Gen.(pair (int_range 0 400) where_gen)
    (fun (nrows, where) ->
      (* Threshold 0 so even tiny tables exercise the partitioned path. *)
      let saved = !Exec.parallel_scan_threshold in
      Exec.parallel_scan_threshold := 0;
      Fun.protect
        ~finally:(fun () -> Exec.parallel_scan_threshold := saved)
        (fun () ->
          let cat = Catalog.create () in
          (match
             Exec.run_string cat "create table t (day chronon valid, qty int, price float)"
           with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "create: %s" e);
          let tbl = Catalog.table cat "t" in
          for i = 0 to nrows - 1 do
            ignore
              (Table.insert tbl
                 [|
                   Value.Chronon (i + 1);
                   Value.Int ((i * 37) mod 211);
                   Value.Float (float_of_int ((i * 13) mod 97) +. 0.5);
                 |])
          done;
          (* Deletions leave holes so chunked iteration must skip dead
             rows exactly like the serial fold. *)
          if nrows > 10 then
            ignore (Exec.run_string cat "delete t where qty > 180");
          let q =
            match
              Qparser.query (Printf.sprintf "retrieve (day, qty, price) from t where %s" where)
            with
            | Ok q -> q
            | Error e -> Alcotest.failf "parse: %s" e
          in
          let serial = scan_rows cat ~domains:1 q in
          serial = scan_rows cat ~domains:2 q && serial = scan_rows cat ~domains:4 q))

let test_scan_threshold_gates () =
  let cat = Catalog.create () in
  ignore (Exec.run_string cat "create table t (qty int)");
  let tbl = Catalog.table cat "t" in
  for i = 0 to 99 do
    ignore (Table.insert tbl [| Value.Int i |])
  done;
  let q =
    match Qparser.query "retrieve (qty) from t where qty >= 0" with
    | Ok q -> q
    | Error e -> Alcotest.failf "parse: %s" e
  in
  (* Below the threshold the scan must stay serial even at 4 domains —
     observable only as identical results here, but it must not wedge on
     a tiny table. *)
  check_int "100 rows back" 100 (List.length (scan_rows cat ~domains:4 q))

let () =
  Pool.ensure_default_domains 4;
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel_map / map_chunks" `Quick test_pool_map;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "re-entrant dispatch" `Quick test_pool_reentrant;
          Alcotest.test_case "domain caps and shutdown" `Quick test_pool_domains_cap;
          Alcotest.test_case "double shutdown keeps serial fallback" `Quick
            test_pool_shutdown_idempotent;
        ] );
      qsuite "min-heap bulk" [ prop_heap_bulk_load; prop_heap_add_list_mixed ];
      ( "dbcron determinism",
        Alcotest.test_case "64 rules, 30 days, 1 vs 4 domains" `Quick
          test_parallel_probe_batches
        :: Alcotest.test_case "session threads the knob" `Quick test_session_reports_domains
        :: List.map QCheck_alcotest.to_alcotest [ prop_parallel_probe_deterministic ] );
      ( "scan determinism",
        Alcotest.test_case "threshold gates tiny tables" `Quick test_scan_threshold_gates
        :: List.map QCheck_alcotest.to_alcotest [ prop_parallel_scan_deterministic ] );
    ]
